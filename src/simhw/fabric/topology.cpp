#include "simhw/fabric/topology.h"

#include <queue>

namespace pp::hw::fabric {

Topology::Topology(int hosts) : hosts_(hosts) {
  if (hosts < 1) throw std::invalid_argument("Topology: hosts < 1");
  out_.resize(static_cast<std::size_t>(hosts));
}

VertexId Topology::add_switch() {
  if (routed_) throw std::logic_error("Topology: add_switch after build_routes");
  out_.emplace_back();
  return static_cast<VertexId>(out_.size() - 1);
}

std::pair<std::int32_t, std::int32_t> Topology::connect(VertexId a,
                                                        VertexId b) {
  if (routed_) throw std::logic_error("Topology: connect after build_routes");
  if (a < 0 || b < 0 || a >= vertices() || b >= vertices() || a == b) {
    throw std::invalid_argument("Topology: bad connect endpoints");
  }
  const std::int32_t ab = n_links_++;
  const std::int32_t ba = n_links_++;
  out_[static_cast<std::size_t>(a)].push_back(EdgeRef{b, ab});
  out_[static_cast<std::size_t>(b)].push_back(EdgeRef{a, ba});
  ends_.push_back({a, b});
  ends_.push_back({b, a});
  return {ab, ba};
}

void Topology::build_routes() {
  const std::size_t v = static_cast<std::size_t>(vertices());
  const std::size_t h = static_cast<std::size_t>(hosts_);
  dist_.assign(v * h, static_cast<std::uint16_t>(kUnreachable));
  std::vector<VertexId> frontier;
  std::vector<VertexId> next;
  for (int dst = 0; dst < hosts_; ++dst) {
    auto d = [&](VertexId x) -> std::uint16_t& {
      return dist_[static_cast<std::size_t>(x) * h +
                   static_cast<std::size_t>(dst)];
    };
    d(dst) = 0;
    frontier.assign(1, dst);
    std::uint16_t depth = 0;
    while (!frontier.empty()) {
      ++depth;
      next.clear();
      for (VertexId u : frontier) {
        for (const EdgeRef& e : out_[static_cast<std::size_t>(u)]) {
          if (d(e.to) == kUnreachable) {
            d(e.to) = depth;
            next.push_back(e.to);
          }
        }
      }
      frontier.swap(next);
    }
  }
  routed_ = true;
}

int Topology::candidate_count(VertexId v, int dst) const {
  const int dv = distance(v, dst);
  if (dv == kUnreachable || dv == 0) return 0;
  int n = 0;
  for (const EdgeRef& e : out_[static_cast<std::size_t>(v)]) {
    if (distance(e.to, dst) == dv - 1) ++n;
  }
  return n;
}

EdgeRef Topology::candidate(VertexId v, int dst, int k) const {
  const int dv = distance(v, dst);
  for (const EdgeRef& e : out_[static_cast<std::size_t>(v)]) {
    if (distance(e.to, dst) == dv - 1 && k-- == 0) return e;
  }
  throw std::out_of_range("Topology: candidate index out of range");
}

EdgeRef Topology::pick(VertexId v, int src, int dst,
                       std::uint32_t flow) const {
  const int n = candidate_count(v, dst);
  if (n == 0) throw std::out_of_range("Topology: no route to destination");
  if (n == 1) return candidate(v, dst, 0);
  // SplitMix64-style finisher over (src, dst, flow): deterministic and
  // well mixed, so flows spread evenly across the equal-cost set.
  std::uint64_t z = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                     << 32) ^
                    static_cast<std::uint32_t>(dst);
  z += 0x9e3779b97f4a7c15ULL * (flow + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return candidate(v, dst, static_cast<int>(z % static_cast<std::uint64_t>(n)));
}

std::string Topology::vertex_name(VertexId v) const {
  std::string out(1, is_host(v) ? 'h' : 's');
  out += std::to_string(is_host(v) ? v : v - hosts_);
  return out;
}

}  // namespace pp::hw::fabric
