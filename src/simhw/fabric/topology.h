// Switch-fabric graph and deterministic routing tables.
//
// The fabric models a cluster interconnect as a directed multigraph:
// host vertices 0..hosts-1 (one per hw::Node) plus switch vertices,
// joined by duplex connections registered in a fixed order. Routing
// follows the protoGraph/protoRouteTable idiom: a per-destination
// distance table built once by BFS over the undirected graph, then
// queried at forwarding time for the equal-cost next-hop set (all
// out-edges one hop closer to the destination). Because every route
// step strictly decreases the remaining distance, routes are loop-free
// by construction — on fat-tree and Clos shapes every shortest path is
// an up/down path, which is the classical deadlock-free route set.
//
// ECMP selection is a pure function of (src, dst, flow): the same flow
// always takes the same path, in every shard layout and scheduler, so
// fabric runs stay bit-identical while distinct flows still spread
// across the equal-cost uplinks.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace pp::hw::fabric {

/// Vertex id: hosts first (0..hosts-1), switches after.
using VertexId = std::int32_t;

/// One directed out-edge: the vertex it leads to and the global index
/// of the Link object that realizes it.
struct EdgeRef {
  VertexId to = -1;
  std::int32_t link = -1;
};

class Topology {
 public:
  static constexpr int kUnreachable = std::numeric_limits<std::uint16_t>::max();

  explicit Topology(int hosts);

  /// Adds a switch vertex; returns its VertexId (>= hosts()).
  VertexId add_switch();

  /// Registers a duplex connection between two vertices. Returns the
  /// global link indices {a->b, b->a}; links are numbered in
  /// registration order, which fixes both the ECMP candidate order and
  /// the Link array layout in the Fabric.
  std::pair<std::int32_t, std::int32_t> connect(VertexId a, VertexId b);

  int hosts() const noexcept { return hosts_; }
  int vertices() const noexcept { return static_cast<int>(out_.size()); }
  int links() const noexcept { return n_links_; }
  bool is_host(VertexId v) const noexcept { return v < hosts_; }
  const std::vector<EdgeRef>& out(VertexId v) const {
    return out_[static_cast<std::size_t>(v)];
  }
  /// Endpoints of a directed link: {tail vertex, head vertex}.
  std::pair<VertexId, VertexId> link_ends(std::int32_t link) const {
    return ends_[static_cast<std::size_t>(link)];
  }

  /// Builds the per-destination-host distance tables (BFS from each
  /// host over the undirected graph). Call once, after every connect.
  void build_routes();

  /// Hop count from `v` to host `dst`, or kUnreachable.
  int distance(VertexId v, int dst) const {
    return dist_[static_cast<std::size_t>(v) * static_cast<std::size_t>(hosts_) +
                 static_cast<std::size_t>(dst)];
  }

  /// Number of equal-cost next hops from `v` toward host `dst` (out-
  /// edges whose head is exactly one hop closer).
  int candidate_count(VertexId v, int dst) const;

  /// The k-th equal-cost next hop (k < candidate_count), in edge
  /// registration order.
  EdgeRef candidate(VertexId v, int dst, int k) const;

  /// Deterministic ECMP pick among the equal-cost next hops for a frame
  /// of flow `flow` traveling src -> dst. Pure function of its
  /// arguments; throws std::out_of_range when dst is unreachable.
  EdgeRef pick(VertexId v, int src, int dst, std::uint32_t flow) const;

  /// Human-readable vertex name ("h12" / "s3") for link labels.
  std::string vertex_name(VertexId v) const;

 private:
  int hosts_;
  int n_links_ = 0;
  bool routed_ = false;
  std::vector<std::vector<EdgeRef>> out_;
  std::vector<std::pair<VertexId, VertexId>> ends_;
  std::vector<std::uint16_t> dist_;  // [vertex * hosts_ + dst]
};

}  // namespace pp::hw::fabric
