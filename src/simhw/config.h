// Parameter structs describing hosts, NICs and links.
//
// Every number that shapes a measurement lives here, in one place, so the
// calibration pass (presets.cpp) and the ablation benches can reason about
// them. See DESIGN.md §7 for how the presets were anchored to the paper's
// raw-TCP numbers.
#pragma once

#include <cstdint>
#include <string>

#include "simcore/resource.h"
#include "simcore/time.h"

namespace pp::hw {

using sim::Rate;
using sim::SimTime;

/// Host (motherboard + OS) parameters.
struct HostConfig {
  std::string name;

  /// Large, uncached memcpy bandwidth. Every user<->kernel copy and every
  /// message-passing-library staging copy is charged at this rate on the
  /// node's single CPU resource — this is what makes "one extra memcpy"
  /// cost the 25-30 % the paper measures for MPICH and PVM.
  Rate copy_bandwidth = Rate::megabytes(200);

  /// Copy bandwidth for small, cache-resident buffers (library staging
  /// copies of short messages run much faster than cold-memory streams).
  Rate cached_copy_bandwidth = Rate::megabytes(1200);
  /// Staging copies at or below this size use the cached rate.
  std::uint32_t cached_copy_limit = 32 * 1024;

  /// Raw PCI burst bandwidth for the bus width below (32-bit/33 MHz is
  /// ~132 MB/s theoretical). Per-NIC DMA-engine efficiency scales it.
  Rate pci_raw = Rate::megabytes(132);
  int pci_width_bits = 32;
  SimTime pci_dma_setup = sim::microseconds(0.5);

  /// Cost of one user/kernel crossing (send()/recv() syscall entry).
  SimTime syscall_cost = sim::microseconds(1.0);
  /// Scheduler cost to wake a process blocked in recv()/select().
  SimTime wakeup_cost = sim::microseconds(3.0);

  /// Kernel TCP/IP per-packet protocol processing (excludes the NIC
  /// driver's own per-packet costs, which are NIC properties).
  SimTime proto_tx_cost = sim::microseconds(4.0);
  SimTime proto_rx_cost = sim::microseconds(5.0);
};

/// NIC (card + driver) parameters.
struct NicConfig {
  std::string name;

  Rate link_rate = Rate::gigabits(1.0);
  std::uint32_t mtu = 1500;       ///< configured MTU (IP bytes per frame)
  std::uint32_t max_mtu = 1500;   ///< what the hardware supports
  /// Preamble + SFD + inter-frame gap + MAC header + CRC per frame.
  std::uint32_t frame_overhead = 38;

  bool pci64_capable = false;
  /// DMA-engine quality: fraction of the host's raw PCI bandwidth this
  /// card sustains (descriptor fetches, burst sizes...).
  double pci_efficiency = 0.7;

  /// Per-packet driver work charged on the host CPU.
  SimTime driver_tx_cost = sim::microseconds(3.0);
  SimTime driver_rx_cost = sim::microseconds(6.0);

  /// Per-packet work on the NIC's own processor/DMA path (dominates for
  /// Myrinet's LANai; ~0 for dumb Ethernet NICs whose work we charge to
  /// the host driver instead).
  SimTime nic_tx_cost = 0;
  SimTime nic_rx_cost = 0;

  /// Interrupt latency when the link has been idle (ping-pong latency).
  SimTime sparse_irq_delay = sim::microseconds(15.0);
  /// Receive-path notification delay under streaming load (interrupt
  /// mitigation + driver ring-processing stalls). For stall-prone cards
  /// this is large, delaying returning ACKs and making throughput
  /// socket-buffer-limited — the paper's TrendNet story.
  SimTime busy_irq_delay = sim::microseconds(10.0);
  /// Inter-frame gap above which the link counts as idle again.
  SimTime idle_gap = sim::microseconds(60.0);
  /// Number of densely-spaced frames before the receive path enters the
  /// loaded regime: a short burst (a message and its control traffic)
  /// still sees the idle-path latency; sustained streams do not.
  int busy_burst_threshold = 8;

  /// True for OS-bypass interconnects (GM, VIA): no kernel protocol cost,
  /// no interrupt on the fast path.
  bool os_bypass = false;
};

/// Cable/switch parameters for one link.
struct LinkConfig {
  /// One-way propagation (cable + any switch port-to-port latency).
  SimTime propagation = sim::microseconds(0.5);
};

}  // namespace pp::hw
