#include "simhw/relay_ring.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "faults/config.h"
#include "simcore/random.h"
#include "simcore/task.h"

namespace pp::hw {

namespace {

/// The relayed descriptor. Allocated fresh from the *relaying* node's
/// arena at every hop — the frame that crossed a shard boundary holds
/// the only reference into the upstream shard's arena, and it dies on
/// this side of the hop.
struct Token {
  std::uint32_t origin = 0;
  std::uint32_t id = 0;
  std::int32_t hops_left = 0;
};

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

struct RelayRing::State {
  std::vector<std::uint64_t> node_retired;  ///< per node, owner-shard writes
  std::vector<sim::SimTime> shard_last;     ///< per shard, own-slot writes
};

namespace {

Packet make_token_frame(sim::Simulator& sim, std::uint64_t payload_bytes,
                        Token tok) {
  Packet p;
  p.dma_bytes = payload_bytes;
  p.wire_bytes = payload_bytes;
  p.desc = sim.packet_arena().make<Token>(tok);
  return p;
}

/// Per-node token origin: `tokens` injections into the node's outgoing
/// pipe, jittered by a stream derived from (run seed, node id) — the
/// stream never depends on the shard count.
sim::Task<void> token_source(Node& node, PacketPipe& out,
                             const RelayRingOptions opt) {
  sim::Simulator& sim = node.simulator();
  sim::SplitMix64 rng(faults::derive_seed(
      opt.seed, std::string("relay.src#") + std::to_string(node.id())));
  const auto gap = static_cast<std::uint64_t>(opt.inject_gap);
  sim::SimTime next = 0;
  for (int t = 0; t < opt.tokens_per_node; ++t) {
    next += static_cast<sim::SimTime>(gap / 2 + rng.below(gap + 1));
    co_await sim.delay_until(next);
    const std::int32_t hops = opt.hops > 0 ? opt.hops - 1 : 0;
    out.inject(make_token_frame(sim, opt.payload_bytes,
                                Token{static_cast<std::uint32_t>(node.id()),
                                      static_cast<std::uint32_t>(t), hops}));
  }
}

/// Per-node relay: takes frames off the incoming pipe, does the relay's
/// staging copy on the local CPU, and either retires the token or
/// re-injects a locally-allocated copy one hop onward.
sim::Task<void> relay_pump(RelayRing::State& st, Node& node, PacketPipe& in,
                           PacketPipe& out, int shard,
                           std::uint64_t payload_bytes) {
  sim::Simulator& sim = node.simulator();
  for (;;) {
    Packet p = co_await in.delivered().pop();
    Token tok = *p.desc.get<Token>();
    // Drop the upstream reference before the copy stalls us: the frame's
    // descriptor belongs to the sending shard's arena.
    p.desc.reset();
    co_await node.staging_copy(payload_bytes);
    if (tok.hops_left <= 0) {
      ++st.node_retired[static_cast<std::size_t>(node.id())];
      st.shard_last[static_cast<std::size_t>(shard)] =
          std::max(st.shard_last[static_cast<std::size_t>(shard)], sim.now());
      continue;
    }
    --tok.hops_left;
    out.inject(make_token_frame(sim, payload_bytes, tok));
  }
}

}  // namespace

RelayRing::RelayRing(const RelayRingOptions& opt)
    : opt_(opt), group_(opt.shards) {
  if (opt_.nodes < 2) throw std::invalid_argument("RelayRing: nodes < 2");
  if (opt_.shards < 1) throw std::invalid_argument("RelayRing: shards < 1");
  if (opt_.shards > opt_.nodes) {
    throw std::invalid_argument("RelayRing: more shards than nodes");
  }

  // The cluster is anchored on shard 0's simulator, but every node is
  // placed explicitly on its own shard; only node placement decides
  // which links cross a boundary.
  cluster_ = std::make_unique<Cluster>(group_.shard(0), opt_.seed);
  HostConfig host;
  host.name = "relay";
  for (int i = 0; i < opt_.nodes; ++i) {
    cluster_->add_node(host, group_.shard(shard_of(i)));
  }
  for (int i = 0; i < opt_.nodes; ++i) {
    cluster_->connect(cluster_->node(static_cast<std::size_t>(i)),
                      cluster_->node(static_cast<std::size_t>((i + 1) %
                                                              opt_.nodes)),
                      opt_.nic, opt_.link);
  }

  state_ = std::make_unique<State>();
  state_->node_retired.assign(static_cast<std::size_t>(opt_.nodes), 0);
  state_->shard_last.assign(static_cast<std::size_t>(opt_.shards), 0);

  for (int i = 0; i < opt_.nodes; ++i) {
    Node& node = cluster_->node(static_cast<std::size_t>(i));
    // connect() pushes the forward pipe first: node i's outgoing ring
    // pipe is pipes()[2*i], its incoming one pipes()[2*((i-1+N)%N)].
    PacketPipe& out = *cluster_->pipes()[static_cast<std::size_t>(2 * i)];
    PacketPipe& in = *cluster_->pipes()[static_cast<std::size_t>(
        2 * ((i - 1 + opt_.nodes) % opt_.nodes))];
    node.simulator().spawn_daemon(
        relay_pump(*state_, node, in, out, shard_of(i), opt_.payload_bytes),
        std::string("relay#") + std::to_string(i));
    node.simulator().spawn(token_source(node, out, opt_),
                           std::string("src#") + std::to_string(i));
  }
}

RelayRing::~RelayRing() = default;

RelayRingResult RelayRing::run() {
  group_.run();

  RelayRingResult r;
  r.per_node_retired = state_->node_retired;
  for (std::uint64_t n : r.per_node_retired) r.tokens_retired += n;
  for (sim::SimTime t : state_->shard_last) {
    r.completion_time = std::max(r.completion_time, t);
  }
  for (PacketPipe* p : cluster_->pipes()) {
    r.per_pipe_delivered.push_back(p->packets_delivered());
    r.per_pipe_dropped.push_back(p->packets_dropped());
    r.hops_total += p->packets_delivered();
  }

  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, r.tokens_retired);
  h = fnv1a(h, r.hops_total);
  h = fnv1a(h, static_cast<std::uint64_t>(r.completion_time));
  for (std::uint64_t v : r.per_node_retired) h = fnv1a(h, v);
  for (std::uint64_t v : r.per_pipe_delivered) h = fnv1a(h, v);
  for (std::uint64_t v : r.per_pipe_dropped) h = fnv1a(h, v);
  r.checksum = h;
  return r;
}

}  // namespace pp::hw
