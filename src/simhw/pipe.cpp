#include "simhw/pipe.h"

#include <cmath>
#include <utility>

#include "simcore/tracing.h"

namespace pp::hw {

PacketPipe::PacketPipe(sim::Simulator& sim, Node& src, Node& dst,
                       NicConfig nic, LinkConfig link, std::string name)
    : sim_(sim),
      src_(src),
      dst_(dst),
      nic_(std::move(nic)),
      link_(link),
      name_(std::move(name)),
      wire_(sim, name_ + ".wire", nic_.link_rate),
      coalescer_(nic_),
      tx_cpu_q_(sim),
      tx_dma_q_(sim),
      wire_q_(sim),
      rx_dma_q_(sim),
      rx_cpu_q_(sim),
      delivered_(sim) {
  sim_.spawn_daemon(tx_cpu_pump(), name_ + ".txcpu");
  sim_.spawn_daemon(tx_dma_pump(), name_ + ".txdma");
  sim_.spawn_daemon(wire_pump(), name_ + ".wire");
  sim_.spawn_daemon(rx_dma_pump(), name_ + ".rxdma");
  sim_.spawn_daemon(rx_cpu_pump(), name_ + ".rxcpu");
}

sim::SimTime PacketPipe::tx_cpu_cost() const {
  return nic_.driver_tx_cost +
         (nic_.os_bypass ? 0 : src_.config().proto_tx_cost);
}

sim::SimTime PacketPipe::rx_cpu_cost() const {
  return nic_.driver_rx_cost +
         (nic_.os_bypass ? 0 : dst_.config().proto_rx_cost);
}

std::uint64_t PacketPipe::pci_effective_bytes(const Node& host,
                                              std::uint64_t bytes) const {
  double factor = nic_.pci_efficiency;
  if (host.config().pci_width_bits == 64 && !nic_.pci64_capable) {
    // A 32-bit card in a 64-bit slot only uses half the bus cycles' width.
    factor *= 0.5;
  }
  if (factor <= 0.0) factor = 1e-3;
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes) / factor));
}

sim::Task<void> PacketPipe::tx_cpu_pump() {
  for (;;) {
    Packet p = co_await tx_cpu_q_.pop();
    // A zero cost must not even queue on the CPU: an OS-bypass NIC's DMA
    // engine proceeds regardless of what the host CPU is doing.
    if (const sim::SimTime cost = tx_cpu_cost(); cost > 0) {
      co_await src_.cpu_cost(cost);
    }
    tx_dma_q_.push_now(std::move(p));
  }
}

sim::Task<void> PacketPipe::tx_dma_pump() {
  for (;;) {
    Packet p = co_await tx_dma_q_.pop();
    co_await src_.pci().transfer_with_overhead(
        pci_effective_bytes(src_, p.dma_bytes), nic_.nic_tx_cost);
    wire_q_.push_now(std::move(p));
  }
}

sim::Task<void> PacketPipe::wire_pump() {
  for (;;) {
    Packet p = co_await wire_q_.pop();
    co_await wire_.transfer(p.wire_bytes);
    // Fault injection: a corrupted frame still occupied the wire but
    // never reaches the receiver.
    if (loss_probability_ > 0.0 &&
        loss_rng_.uniform() < loss_probability_) {
      ++n_dropped_;
      if (sim::TraceRecorder* t = sim_.tracer()) {
        t->record_instant(name_, "drop", sim_.now());
      }
      continue;
    }
    // Propagation does not occupy the wire; hand the frame to the receive
    // side with a fire-and-forget timer so back-to-back frames pipeline.
    auto frame = std::make_shared<Packet>(std::move(p));
    sim_.call_after(link_.propagation, [this, frame]() mutable {
      rx_dma_q_.push_now(std::move(*frame));
    });
  }
}

sim::Task<void> PacketPipe::rx_dma_pump() {
  for (;;) {
    Packet p = co_await rx_dma_q_.pop();
    co_await dst_.pci().transfer_with_overhead(
        pci_effective_bytes(dst_, p.dma_bytes), nic_.nic_rx_cost);
    // The frame now sits in host memory; the interrupt (possibly batched
    // by the mitigation timer) makes the host notice it.
    const sim::SimTime irq_at = coalescer_.interrupt_time(sim_.now());
    if (sim::TraceRecorder* t = sim_.tracer()) {
      // One "irq" per frame at the (possibly mitigation-delayed) time the
      // host notices it; coalesced frames stack at the same timestamp.
      t->record_instant(name_, "irq", irq_at);
    }
    auto frame = std::make_shared<Packet>(std::move(p));
    sim_.call_at(irq_at, [this, frame]() mutable {
      rx_cpu_q_.push_now(std::move(*frame));
    });
  }
}

sim::Task<void> PacketPipe::rx_cpu_pump() {
  for (;;) {
    Packet p = co_await rx_cpu_q_.pop();
    if (const sim::SimTime cost = rx_cpu_cost(); cost > 0) {
      co_await dst_.cpu_cost(cost);
    }
    ++n_delivered_;
    delivered_.push_now(std::move(p));
  }
}

}  // namespace pp::hw
