#include "simhw/pipe.h"

#include <cmath>
#include <utility>

#include "simcore/tracing.h"

namespace pp::hw {

PacketPipe::PacketPipe(sim::Simulator& sim, Node& src, Node& dst,
                       NicConfig nic, LinkConfig link, std::string name)
    : sim_(sim),
      src_(src),
      dst_(dst),
      nic_(std::move(nic)),
      link_(link),
      name_(std::move(name)),
      wire_(sim, name_ + ".wire", nic_.link_rate),
      coalescer_(nic_),
      tx_cpu_q_(sim),
      tx_dma_q_(sim),
      wire_q_(sim),
      rx_dma_q_(sim),
      rx_cpu_q_(sim),
      delivered_(sim) {
  // Standalone pipes (built outside a Cluster) still get a per-name
  // default stream; Cluster::connect overrides with its run-seed-derived
  // value immediately after construction.
  fault_seed_ = faults::derive_seed(0x70726f746f706970ULL /* "protopip" */,
                                    name_);
  sim_.spawn_daemon(tx_cpu_pump(), name_ + ".txcpu");
  sim_.spawn_daemon(tx_dma_pump(), name_ + ".txdma");
  sim_.spawn_daemon(wire_pump(), name_ + ".wire");
  sim_.spawn_daemon(rx_dma_pump(), name_ + ".rxdma");
  sim_.spawn_daemon(rx_cpu_pump(), name_ + ".rxcpu");
}

PacketPipe::~PacketPipe() {
  // Frames still in flight hold arena descriptors. The channel members
  // would release them on destruction anyway, but draining explicitly
  // here keeps the contract visible and also covers the batches parked
  // between their DMA completion and their interrupt flush. (Frames
  // riding pending propagation events are released by the event queue,
  // which the arena outlives.)
  while (tx_cpu_q_.try_pop()) {}
  while (tx_dma_q_.try_pop()) {}
  while (wire_q_.try_pop()) {}
  while (rx_dma_q_.try_pop()) {}
  while (rx_cpu_q_.try_pop()) {}
  while (delivered_.try_pop()) {}
  rx_pending_.clear();
}

void PacketPipe::set_link_faults(const faults::LinkFaultConfig& cfg,
                                 std::uint64_t seed) {
  if (!cfg.any()) {
    link_faults_.reset();
    return;
  }
  link_faults_ = std::make_unique<LinkFaults>();
  link_faults_->cfg = cfg;
  link_faults_->rng = sim::SplitMix64(seed);
}

void PacketPipe::set_nic_faults(const faults::NicFaultConfig& cfg,
                                std::uint64_t seed) {
  if (!cfg.any()) {
    nic_faults_.reset();
    return;
  }
  nic_faults_ = std::make_unique<NicFaults>();
  nic_faults_->cfg = cfg;
  nic_faults_->rng = sim::SplitMix64(seed);
}

void PacketPipe::drop_frame(Packet& p, const char* cause) {
  ++n_dropped_;
  if (sim::TraceRecorder* t = sim_.tracer()) {
    t->record_instant(name_, cause, sim_.now());
  }
  if (p.fire_drop) p.desc.fire_drop();
}

sim::SimTime PacketPipe::tx_cpu_cost() const {
  return nic_.driver_tx_cost +
         (nic_.os_bypass ? 0 : src_.config().proto_tx_cost);
}

sim::SimTime PacketPipe::rx_cpu_cost() const {
  return nic_.driver_rx_cost +
         (nic_.os_bypass ? 0 : dst_.config().proto_rx_cost);
}

std::uint64_t PacketPipe::pci_effective_bytes(const Node& host,
                                              std::uint64_t bytes) const {
  double factor = nic_.pci_efficiency;
  if (host.config().pci_width_bits == 64 && !nic_.pci64_capable) {
    // A 32-bit card in a 64-bit slot only uses half the bus cycles' width.
    factor *= 0.5;
  }
  if (factor <= 0.0) factor = 1e-3;
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes) / factor));
}

sim::Task<void> PacketPipe::tx_cpu_pump() {
  for (;;) {
    Packet p = co_await tx_cpu_q_.pop();
    // A zero cost must not even queue on the CPU: an OS-bypass NIC's DMA
    // engine proceeds regardless of what the host CPU is doing.
    if (const sim::SimTime cost = tx_cpu_cost(); cost > 0) {
      co_await src_.cpu_cost(cost);
    }
    tx_dma_q_.push_now(std::move(p));
  }
}

sim::Task<void> PacketPipe::tx_dma_pump() {
  for (;;) {
    Packet p = co_await tx_dma_q_.pop();
    co_await src_.pci().transfer_with_overhead(
        pci_effective_bytes(src_, p.dma_bytes), nic_.nic_tx_cost);
    wire_q_.push_now(std::move(p));
  }
}

sim::Task<void> PacketPipe::wire_pump() {
  for (;;) {
    Packet p = co_await wire_q_.pop();
    co_await wire_.transfer(p.wire_bytes);
    sim::SimTime extra_delay = 0;
    bool duplicate = false;
    if (link_faults_) {
      LinkFaults& f = *link_faults_;
      // A flapped link is deaf: the frame occupied the wire but nothing
      // is listening on the far end. Pure function of time, so flap
      // windows reproduce exactly regardless of traffic.
      if (f.cfg.flap_enabled() &&
          sim_.now() % f.cfg.flap_period < f.cfg.flap_down) {
        ++n_flap_drops_;
        drop_frame(p, "flap-drop");
        continue;
      }
      // One RNG draw per *configured* feature per frame, in a fixed
      // order, so each feature's sequence is independent of the others'
      // outcomes and runs reproduce bit-exactly.
      bool lost = false;
      if (f.cfg.loss > 0.0 && f.rng.uniform() < f.cfg.loss) lost = true;
      if (f.cfg.ge_enabled()) {
        if (f.ge_bad) {
          if (f.rng.uniform() < f.cfg.ge_bad_to_good) f.ge_bad = false;
        } else {
          if (f.rng.uniform() < f.cfg.ge_good_to_bad) f.ge_bad = true;
        }
        const double pl = f.ge_bad ? f.cfg.ge_loss_bad : f.cfg.ge_loss_good;
        if (pl > 0.0 && f.rng.uniform() < pl) lost = true;
      }
      if (lost) {
        drop_frame(p, "drop");
        continue;
      }
      if (f.cfg.corrupt > 0.0 && f.rng.uniform() < f.cfg.corrupt) {
        p.corrupted = true;
        ++n_corrupted_;
        if (sim::TraceRecorder* t = sim_.tracer()) {
          t->record_instant(name_, "corrupt", sim_.now());
        }
      }
      if (f.cfg.duplicate > 0.0 && !p.injected_dup &&
          f.rng.uniform() < f.cfg.duplicate) {
        duplicate = true;
        ++n_duplicated_;
        if (sim::TraceRecorder* t = sim_.tracer()) {
          t->record_instant(name_, "dup", sim_.now());
        }
      }
      if (f.cfg.reorder > 0.0 && f.rng.uniform() < f.cfg.reorder) {
        extra_delay = f.cfg.reorder_delay;
        ++n_reordered_;
        if (sim::TraceRecorder* t = sim_.tracer()) {
          t->record_instant(name_, "reorder", sim_.now());
        }
      }
    }
    if (duplicate) {
      // The copy trails the original by one propagation "slot". It
      // shares the descriptor (a zero-copy view, not a clone) but never
      // fires the drop hook: the original owns any flow-control reclaim.
      Packet copy = p;
      copy.injected_dup = true;
      copy.fire_drop = false;
      sim_.call_after(link_.propagation + extra_delay + 1,
                      [this, dup = std::move(copy)]() mutable {
                        deliver_to_rx(std::move(dup));
                      });
    }
    // Propagation does not occupy the wire; hand the frame to the receive
    // side with a fire-and-forget timer so back-to-back frames pipeline.
    // The move-only callback slot carries the Packet in the event node
    // itself — no per-frame shared_ptr wrap.
    sim_.call_after(link_.propagation + extra_delay,
                    [this, frame = std::move(p)]() mutable {
                      deliver_to_rx(std::move(frame));
                    });
  }
}

// Arrival at the receive NIC: the frame lands in the rx descriptor ring
// (or overflows it, if a ring-size fault is armed).
void PacketPipe::deliver_to_rx(Packet p) {
  if (nic_faults_ && nic_faults_->cfg.ring_slots > 0 &&
      rx_backlog_ >= nic_faults_->cfg.ring_slots) {
    ++n_ring_drops_;
    drop_frame(p, "ring-overflow");
    return;
  }
  ++rx_backlog_;
  rx_dma_q_.push_now(std::move(p));
}

sim::Task<void> PacketPipe::rx_dma_pump() {
  for (;;) {
    Packet p = co_await rx_dma_q_.pop();
    co_await dst_.pci().transfer_with_overhead(
        pci_effective_bytes(dst_, p.dma_bytes), nic_.nic_rx_cost);
    // The frame now sits in host memory; the interrupt (possibly batched
    // by the mitigation timer) makes the host notice it. An injected
    // interrupt stall is folded into the coalescer's FIFO clamp so a
    // stalled frame cannot be overtaken — which also keeps the batch
    // queue's interrupt times non-decreasing.
    sim::SimTime stall = 0;
    if (nic_faults_ && nic_faults_->cfg.irq_stall > 0.0 &&
        nic_faults_->rng.uniform() < nic_faults_->cfg.irq_stall) {
      stall = nic_faults_->cfg.irq_stall_time;
      ++n_irq_stalls_;
      if (sim::TraceRecorder* t = sim_.tracer()) {
        t->record_instant(name_, "irq-stall", sim_.now());
      }
    }
    const sim::SimTime irq_at = coalescer_.interrupt_time(sim_.now(), stall);
    if (sim::TraceRecorder* t = sim_.tracer()) {
      // One "irq" per frame at the (possibly mitigation-delayed) time the
      // host notices it; coalesced frames stack at the same timestamp.
      t->record_instant(name_, "irq", irq_at);
    }
    enqueue_rx_frame(irq_at, std::move(p));
  }
}

void PacketPipe::enqueue_rx_frame(sim::SimTime irq_at, Packet p) {
  if (!rx_pending_.empty() && rx_pending_.back().at == irq_at) {
    // Rides the interrupt already scheduled for this batch.
    rx_pending_.back().frames.push_back(std::move(p));
    return;
  }
  assert(rx_pending_.empty() || irq_at > rx_pending_.back().at);
  RxBatch b;
  b.at = irq_at;
  if (!batch_pool_.empty()) {
    b.frames = std::move(batch_pool_.back());
    batch_pool_.pop_back();
  }
  b.frames.push_back(std::move(p));
  rx_pending_.push_back(std::move(b));
  sim_.call_at(irq_at, [this] { flush_rx_batch(); });
}

void PacketPipe::flush_rx_batch() {
  assert(!rx_pending_.empty());
  RxBatch b = std::move(rx_pending_.front());
  rx_pending_.pop_front();
  rx_cpu_q_.push_now(std::move(b.frames));
}

sim::Task<void> PacketPipe::rx_cpu_pump() {
  for (;;) {
    FrameBatch batch = co_await rx_cpu_q_.pop();
    for (Packet& p : batch) {
      // The host takes the frame out of the rx ring; its slot frees up.
      // The increment at admission and this decrement pair exactly
      // (overflow drops are refused before the increment), so underflow
      // is impossible by construction.
      assert(rx_backlog_ > 0);
      --rx_backlog_;
      if (const sim::SimTime cost = rx_cpu_cost(); cost > 0) {
        co_await dst_.cpu_cost(cost);
      }
      ++n_delivered_;
      delivered_.push_now(std::move(p));
    }
    batch.clear();
    if (batch_pool_.size() < 64) batch_pool_.push_back(std::move(batch));
  }
}

}  // namespace pp::hw
