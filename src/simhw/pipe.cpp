#include "simhw/pipe.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "simcore/shard.h"
#include "simcore/tracing.h"

namespace pp::hw {

PacketPipe::PacketPipe(sim::Simulator& sim, Node& src, Node& dst,
                       NicConfig nic, LinkConfig link, std::string name)
    : src_sim_(sim),
      dst_sim_(dst.simulator()),
      src_(src),
      dst_(dst),
      nic_(std::move(nic)),
      link_(link),
      name_(std::move(name)),
      wire_(sim, name_ + ".wire", nic_.link_rate),
      coalescer_(nic_),
      tx_cpu_q_(sim),
      tx_dma_q_(sim),
      wire_q_(sim),
      rx_dma_q_(dst_sim_),
      rx_cpu_q_(dst_sim_),
      delivered_(dst_sim_) {
  assert(&src_sim_ == &src.simulator() &&
         "PacketPipe's simulator must be the source node's");
  cross_shard_ = &src_sim_ != &dst_sim_;
  // The ordering tag depends on the pipe *name* only: it must be the
  // same value in every shard layout (and in the serial run) for the
  // merged arrival order to be layout-independent. Reserve the local
  // sentinel.
  order_tag_ =
      faults::derive_seed(0x736861726474616bULL /* "shardtag" */, name_);
  if (order_tag_ == sim::kLocalEventTag) --order_tag_;
  // Standalone pipes (built outside a Cluster) still get a per-name
  // default stream; Cluster::connect overrides with its run-seed-derived
  // value immediately after construction.
  fault_seed_ = faults::derive_seed(0x70726f746f706970ULL /* "protopip" */,
                                    name_);
  if (cross_shard_) {
    sim::ShardGroup* group = src_sim_.shard_group();
    if (group == nullptr || group != dst_sim_.shard_group()) {
      throw std::logic_error(
          "pipe '" + name_ +
          "' spans two simulators that are not shards of one ShardGroup");
    }
    // Registers this link's propagation as a lookahead bound; throws
    // std::invalid_argument for a zero-latency cross-shard link.
    group->register_link(link_.propagation);
  }
  src_sim_.spawn_daemon(tx_cpu_pump(), name_ + ".txcpu");
  src_sim_.spawn_daemon(tx_dma_pump(), name_ + ".txdma");
  src_sim_.spawn_daemon(wire_pump(), name_ + ".wire");
  dst_sim_.spawn_daemon(rx_dma_pump(), name_ + ".rxdma");
  dst_sim_.spawn_daemon(rx_cpu_pump(), name_ + ".rxcpu");
  // Crash teardown: each side drains on its own node's power-off, on its
  // own shard's thread (the listener runs inside Node::crash(), which a
  // FaultPlan schedules on the node's simulator).
  src_.add_power_listener([this](PowerEvent e) {
    if (e == PowerEvent::kCrash) drain_tx_on_crash();
  });
  dst_.add_power_listener([this](PowerEvent e) {
    if (e == PowerEvent::kCrash) drain_rx_on_crash();
  });
}

PacketPipe::~PacketPipe() {
  // Frames still in flight hold arena descriptors. The channel members
  // would release them on destruction anyway, but draining explicitly
  // here keeps the contract visible and also covers the batches parked
  // between their DMA completion and their interrupt flush. (Frames
  // riding pending propagation events are released by the event queue,
  // which the arena outlives.)
  while (tx_cpu_q_.try_pop()) {}
  while (tx_dma_q_.try_pop()) {}
  while (wire_q_.try_pop()) {}
  while (rx_dma_q_.try_pop()) {}
  while (rx_cpu_q_.try_pop()) {}
  while (delivered_.try_pop()) {}
  rx_pending_.clear();
}

void PacketPipe::set_link_faults(const faults::LinkFaultConfig& cfg,
                                 std::uint64_t seed) {
  if (!cfg.any()) {
    link_faults_.reset();
    return;
  }
  link_faults_ = std::make_unique<LinkFaults>();
  link_faults_->cfg = cfg;
  link_faults_->rng = sim::SplitMix64(seed);
}

void PacketPipe::set_nic_faults(const faults::NicFaultConfig& cfg,
                                std::uint64_t seed) {
  if (!cfg.any()) {
    nic_faults_.reset();
    return;
  }
  nic_faults_ = std::make_unique<NicFaults>();
  nic_faults_->cfg = cfg;
  nic_faults_->rng = sim::SplitMix64(seed);
}

void PacketPipe::drop_frame(Packet& p, const char* cause, bool rx_side) {
  // Per-side counter and clock: tx-stage drops happen on the source
  // shard's thread, rx-stage drops on the destination's. A drop hook
  // fired on the rx side runs on the destination shard — hooks that
  // reach back into tx-side state are unsupported across a boundary.
  sim::Simulator& side = rx_side ? dst_sim_ : src_sim_;
  ++(rx_side ? n_rx_dropped_ : n_tx_dropped_);
  if (sim::TraceRecorder* t = side.tracer()) {
    t->record_instant(name_, cause, side.now());
  }
  if (p.fire_drop) p.desc.fire_drop();
}

void PacketPipe::drain_tx_on_crash() {
  while (auto p = tx_cpu_q_.try_pop()) {
    ++n_crash_drops_;
    drop_frame(*p, "crash-drop", /*rx_side=*/false);
  }
  while (auto p = tx_dma_q_.try_pop()) {
    ++n_crash_drops_;
    drop_frame(*p, "crash-drop", /*rx_side=*/false);
  }
  while (auto p = wire_q_.try_pop()) {
    ++n_crash_drops_;
    drop_frame(*p, "crash-drop", /*rx_side=*/false);
  }
}

void PacketPipe::drain_rx_on_crash() {
  while (auto p = rx_dma_q_.try_pop()) {
    assert(rx_backlog_ > 0);
    --rx_backlog_;
    ++n_crash_drops_;
    drop_frame(*p, "crash-drop", /*rx_side=*/true);
  }
  while (auto b = rx_cpu_q_.try_pop()) {
    for (Packet& p : *b) {
      assert(rx_backlog_ > 0);
      --rx_backlog_;
      ++n_crash_drops_;
      drop_frame(p, "crash-drop", /*rx_side=*/true);
    }
  }
  // Parked interrupt batches lose their frames but keep their RxBatch
  // entries: each has a flush event already scheduled, and flush pairs
  // with batches positionally (pop-front). An emptied batch flushes a
  // zero-frame FrameBatch, which rx_cpu_pump skips over.
  for (std::size_t i = rx_pending_.size(); i > 0; --i) {
    RxBatch b = std::move(rx_pending_.front());
    rx_pending_.pop_front();
    for (Packet& p : b.frames) {
      assert(rx_backlog_ > 0);
      --rx_backlog_;
      ++n_crash_drops_;
      drop_frame(p, "crash-drop", /*rx_side=*/true);
    }
    b.frames.clear();
    rx_pending_.push_back(std::move(b));
  }
  while (auto p = delivered_.try_pop()) {
    // Already taken out of the ring by the host CPU (backlog was
    // decremented in rx_cpu_pump); the protocol just never saw it.
    ++n_crash_drops_;
    drop_frame(*p, "crash-drop", /*rx_side=*/true);
  }
}

void PacketPipe::schedule_arrival(sim::SimTime delay, Packet p) {
  const sim::SimTime send = src_sim_.now();
  const std::uint64_t seq = arrival_seq_++;
  if (!cross_shard_) {
    dst_sim_.call_at_tagged(send + delay, send, order_tag_, seq,
                            [this, frame = std::move(p)]() mutable {
                              deliver_to_rx(std::move(frame));
                            });
    return;
  }
  src_sim_.shard_group()->post(
      src_sim_.shard_index(), dst_sim_.shard_index(), send + delay, send,
      order_tag_, seq, sim::SmallFn([this, frame = std::move(p)]() mutable {
        deliver_to_rx(std::move(frame));
      }));
}

sim::SimTime PacketPipe::tx_cpu_cost() const {
  return nic_.driver_tx_cost +
         (nic_.os_bypass ? 0 : src_.config().proto_tx_cost);
}

sim::SimTime PacketPipe::rx_cpu_cost() const {
  return nic_.driver_rx_cost +
         (nic_.os_bypass ? 0 : dst_.config().proto_rx_cost);
}

std::uint64_t PacketPipe::pci_effective_bytes(const Node& host,
                                              std::uint64_t bytes) const {
  double factor = nic_.pci_efficiency;
  if (host.config().pci_width_bits == 64 && !nic_.pci64_capable) {
    // A 32-bit card in a 64-bit slot only uses half the bus cycles' width.
    factor *= 0.5;
  }
  if (factor <= 0.0) factor = 1e-3;
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes) / factor));
}

sim::Task<void> PacketPipe::tx_cpu_pump() {
  for (;;) {
    Packet p = co_await tx_cpu_q_.pop();
    // A powered-off host's NIC accepts no doorbells: frames injected by
    // coroutines that outlived their host's crash die right here.
    if (!src_.is_up()) {
      ++n_crash_drops_;
      drop_frame(p, "down-drop", /*rx_side=*/false);
      continue;
    }
    // A zero cost must not even queue on the CPU: an OS-bypass NIC's DMA
    // engine proceeds regardless of what the host CPU is doing.
    if (const sim::SimTime cost = tx_cpu_cost(); cost > 0) {
      co_await src_.cpu_cost(cost);
    }
    tx_dma_q_.push_now(std::move(p));
  }
}

sim::Task<void> PacketPipe::tx_dma_pump() {
  for (;;) {
    Packet p = co_await tx_dma_q_.pop();
    co_await src_.pci().transfer_with_overhead(
        pci_effective_bytes(src_, p.dma_bytes), nic_.nic_tx_cost);
    wire_q_.push_now(std::move(p));
  }
}

sim::Task<void> PacketPipe::wire_pump() {
  for (;;) {
    Packet p = co_await wire_q_.pop();
    co_await wire_.transfer(p.wire_bytes);
    // A frame still in the NIC when the host lost power never makes it
    // out (the crash drain caught queued frames; this catches the one a
    // pump stage was holding mid-transfer).
    if (!src_.is_up()) {
      ++n_crash_drops_;
      drop_frame(p, "down-drop", /*rx_side=*/false);
      continue;
    }
    sim::SimTime extra_delay = 0;
    bool duplicate = false;
    if (link_faults_) {
      LinkFaults& f = *link_faults_;
      // A flapped link is deaf: the frame occupied the wire but nothing
      // is listening on the far end. Pure function of time, so flap
      // windows reproduce exactly regardless of traffic.
      if (f.cfg.flap_enabled() &&
          src_sim_.now() % f.cfg.flap_period < f.cfg.flap_down) {
        ++n_flap_drops_;
        drop_frame(p, "flap-drop", /*rx_side=*/false);
        continue;
      }
      // One RNG draw per *configured* feature per frame, in a fixed
      // order, so each feature's sequence is independent of the others'
      // outcomes and runs reproduce bit-exactly.
      bool lost = false;
      if (f.cfg.loss > 0.0 && f.rng.uniform() < f.cfg.loss) lost = true;
      if (f.cfg.ge_enabled()) {
        // The chain steps even for frames the Bernoulli draw already
        // lost: every configured feature consumes its draws every frame.
        if (f.ge.step(f.cfg, f.rng)) lost = true;
      }
      if (lost) {
        drop_frame(p, "drop", /*rx_side=*/false);
        continue;
      }
      if (f.cfg.corrupt > 0.0 && f.rng.uniform() < f.cfg.corrupt) {
        p.corrupted = true;
        ++n_corrupted_;
        if (sim::TraceRecorder* t = src_sim_.tracer()) {
          t->record_instant(name_, "corrupt", src_sim_.now());
        }
      }
      if (f.cfg.duplicate > 0.0 && !p.injected_dup &&
          f.rng.uniform() < f.cfg.duplicate) {
        duplicate = true;
        ++n_duplicated_;
        if (sim::TraceRecorder* t = src_sim_.tracer()) {
          t->record_instant(name_, "dup", src_sim_.now());
        }
      }
      if (f.cfg.reorder > 0.0 && f.rng.uniform() < f.cfg.reorder) {
        extra_delay = f.cfg.reorder_delay;
        ++n_reordered_;
        if (sim::TraceRecorder* t = src_sim_.tracer()) {
          t->record_instant(name_, "reorder", src_sim_.now());
        }
      }
    }
    if (duplicate) {
      // The copy trails the original by one propagation "slot". It
      // shares the descriptor (a zero-copy view, not a clone) but never
      // fires the drop hook: the original owns any flow-control reclaim.
      Packet copy = p;
      copy.injected_dup = true;
      copy.fire_drop = false;
      schedule_arrival(link_.propagation + extra_delay + 1, std::move(copy));
    }
    // Propagation does not occupy the wire; hand the frame to the receive
    // side under the shard-stable arrival key so back-to-back frames
    // pipeline. The move-only callback slot carries the Packet in the
    // event node itself — no per-frame shared_ptr wrap.
    schedule_arrival(link_.propagation + extra_delay, std::move(p));
  }
}

// Arrival at the receive NIC: the frame lands in the rx descriptor ring
// (or overflows it, if a ring-size fault is armed).
void PacketPipe::deliver_to_rx(Packet p) {
  // Nothing is listening on a powered-off receiver: frames that were on
  // the wire when it crashed (or arrive during its downtime) vanish.
  if (!dst_.is_up()) {
    ++n_crash_drops_;
    drop_frame(p, "down-drop", /*rx_side=*/true);
    return;
  }
  if (nic_faults_ && nic_faults_->cfg.ring_slots > 0 &&
      rx_backlog_ >= nic_faults_->cfg.ring_slots) {
    ++n_ring_drops_;
    drop_frame(p, "ring-overflow", /*rx_side=*/true);
    return;
  }
  ++rx_backlog_;
  rx_dma_q_.push_now(std::move(p));
}

sim::Task<void> PacketPipe::rx_dma_pump() {
  for (;;) {
    Packet p = co_await rx_dma_q_.pop();
    co_await dst_.pci().transfer_with_overhead(
        pci_effective_bytes(dst_, p.dma_bytes), nic_.nic_rx_cost);
    // The frame the DMA engine held when the host crashed was out of the
    // drain's reach; it dies here instead of raising an interrupt.
    if (!dst_.is_up()) {
      assert(rx_backlog_ > 0);
      --rx_backlog_;
      ++n_crash_drops_;
      drop_frame(p, "down-drop", /*rx_side=*/true);
      continue;
    }
    // The frame now sits in host memory; the interrupt (possibly batched
    // by the mitigation timer) makes the host notice it. An injected
    // interrupt stall is folded into the coalescer's FIFO clamp so a
    // stalled frame cannot be overtaken — which also keeps the batch
    // queue's interrupt times non-decreasing.
    sim::SimTime stall = 0;
    if (nic_faults_ && nic_faults_->cfg.irq_stall > 0.0 &&
        nic_faults_->rng.uniform() < nic_faults_->cfg.irq_stall) {
      stall = nic_faults_->cfg.irq_stall_time;
      ++n_irq_stalls_;
      if (sim::TraceRecorder* t = dst_sim_.tracer()) {
        t->record_instant(name_, "irq-stall", dst_sim_.now());
      }
    }
    const sim::SimTime irq_at =
        coalescer_.interrupt_time(dst_sim_.now(), stall);
    if (sim::TraceRecorder* t = dst_sim_.tracer()) {
      // One "irq" per frame at the (possibly mitigation-delayed) time the
      // host notices it; coalesced frames stack at the same timestamp.
      t->record_instant(name_, "irq", irq_at);
    }
    enqueue_rx_frame(irq_at, std::move(p));
  }
}

void PacketPipe::enqueue_rx_frame(sim::SimTime irq_at, Packet p) {
  if (!rx_pending_.empty() && rx_pending_.back().at == irq_at) {
    // Rides the interrupt already scheduled for this batch.
    rx_pending_.back().frames.push_back(std::move(p));
    return;
  }
  assert(rx_pending_.empty() || irq_at > rx_pending_.back().at);
  RxBatch b;
  b.at = irq_at;
  if (!batch_pool_.empty()) {
    b.frames = std::move(batch_pool_.back());
    batch_pool_.pop_back();
  }
  b.frames.push_back(std::move(p));
  rx_pending_.push_back(std::move(b));
  dst_sim_.call_at(irq_at, [this] { flush_rx_batch(); });
}

void PacketPipe::flush_rx_batch() {
  // Verdict-at-acceptance contract: every fault decision for these
  // frames was recorded when the frame entered its stage — flap at wire
  // exit, ring overflow at ring admission (deliver_to_rx), irq stall at
  // DMA completion (enqueue_rx_frame). The flush consults NO fault
  // state: a link flap or ring reconfiguration landing inside the
  // coalescing window can neither retro-drop an accepted frame nor
  // revive a refused one. test_faults pins this with a flap falling
  // between acceptance and flush.
  assert(!rx_pending_.empty());
  RxBatch b = std::move(rx_pending_.front());
  rx_pending_.pop_front();
  rx_cpu_q_.push_now(std::move(b.frames));
}

sim::Task<void> PacketPipe::rx_cpu_pump() {
  for (;;) {
    FrameBatch batch = co_await rx_cpu_q_.pop();
    for (Packet& p : batch) {
      // The host takes the frame out of the rx ring; its slot frees up.
      // The increment at admission and this decrement pair exactly
      // (overflow drops are refused before the increment), so underflow
      // is impossible by construction.
      assert(rx_backlog_ > 0);
      --rx_backlog_;
      // Mid-batch crash: frames behind the one being processed when the
      // power went were still local variables here, out of the drain's
      // reach — they die at this check instead of being delivered.
      if (!dst_.is_up()) {
        ++n_crash_drops_;
        drop_frame(p, "down-drop", /*rx_side=*/true);
        continue;
      }
      if (const sim::SimTime cost = rx_cpu_cost(); cost > 0) {
        co_await dst_.cpu_cost(cost);
      }
      ++n_delivered_;
      delivered_.push_now(std::move(p));
    }
    batch.clear();
    if (batch_pool_.size() < 64) batch_pool_.push_back(std::move(batch));
  }
}

}  // namespace pp::hw
