// Receive-interrupt timing model.
//
// Two regimes, chosen by the gap since the previous frame:
//  - idle link (gap >= idle_gap): the base interrupt latency applies. This
//    is what a ping-pong latency test sees.
//  - streaming (gap < idle_gap): the NIC's loaded receive path applies —
//    interrupt mitigation plus, on the cheap cards of the paper's era,
//    driver receive-ring stalls. ACKs returning to a bulk sender ride this
//    path, so a large busy delay inflates the effective RTT and makes
//    throughput socket-buffer-limited: the paper's TrendNet story.
//
// Which frames advance the regime (the fault-injection contract): the
// coalescer is driven by every frame that completes receive DMA — that
// includes fault-injected duplicates and corrupted frames, which are
// physical frames the NIC DMAs and raises an interrupt for just like any
// other. Frames refused at rx-ring admission (ring-overflow drops) never
// reach the DMA engine and must NOT touch dense_count_/last_arrival_:
// a dropped frame generates no interrupt, so it cannot shift the
// mitigation regime of the surviving traffic.
//
// Delivery order is clamped to be FIFO regardless of the regime mix,
// *including* fault-injected interrupt stalls: a stall is folded into the
// clamp (not added after it), so a stalled frame delays every later
// frame's interrupt past its own instead of being overtaken. Batched
// rx delivery (simhw/pipe.cpp) relies on the returned times being
// non-decreasing.
#pragma once

#include "simcore/time.h"
#include "simhw/config.h"

namespace pp::hw {

class RxCoalescer {
 public:
  explicit RxCoalescer(const NicConfig& nic)
      : sparse_delay_(nic.sparse_irq_delay),
        busy_delay_(nic.busy_irq_delay),
        idle_gap_(nic.idle_gap),
        burst_threshold_(nic.busy_burst_threshold) {}

  /// Time the host notices a frame that finished DMA at `arrival`.
  /// `stall` is an extra injected interrupt delay (fault injection) that
  /// participates in the FIFO clamp. Monotone non-decreasing for
  /// non-decreasing arrivals.
  sim::SimTime interrupt_time(sim::SimTime arrival, sim::SimTime stall = 0) {
    if (last_arrival_ < 0 || arrival - last_arrival_ >= idle_gap_) {
      dense_count_ = 0;  // link went idle; the loaded regime resets
    } else {
      ++dense_count_;
    }
    last_arrival_ = arrival;
    const bool loaded = dense_count_ >= burst_threshold_;
    sim::SimTime fire = arrival + (loaded ? busy_delay_ : sparse_delay_) +
                        stall;
    if (fire < last_fire_) fire = last_fire_;  // FIFO
    last_fire_ = fire;
    return fire;
  }

 private:
  sim::SimTime sparse_delay_;
  sim::SimTime busy_delay_;
  sim::SimTime idle_gap_;
  int burst_threshold_;
  int dense_count_ = 0;
  sim::SimTime last_arrival_ = -1;
  sim::SimTime last_fire_ = 0;
};

}  // namespace pp::hw
