// A shardable cluster-scale workload: a token-relay ring over raw
// packet pipes.
//
// N nodes form a unidirectional ring. Each node originates a number of
// tokens (with per-node deterministic jitter between injections); every
// token is relayed hop by hop for a fixed hop count, then retires at
// whichever node it lands on. All traffic is raw PacketPipe frames — no
// TCP — so the ring can be partitioned across a sim::ShardGroup at any
// contiguous block boundary (TCP endpoints mutate peer state directly
// and must stay co-located; the relay ring exists precisely to give the
// sharding machinery a 64+-node workload it can cut anywhere).
//
// The result struct is canonical (per-node and per-pipe vectors in
// index order, one order-independent checksum), so the determinism
// suite can assert bit-identity across shard counts {1, 2, 8}, fault
// plans included.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simcore/shard.h"
#include "simcore/simulator.h"
#include "simhw/cluster.h"
#include "simhw/config.h"

namespace pp::hw {

struct RelayRingOptions {
  int nodes = 64;
  /// Shards to partition the ring across (contiguous blocks). 1 runs the
  /// whole ring on a single simulator — the serial reference.
  int shards = 1;
  int tokens_per_node = 4;
  /// Hops each token travels before retiring.
  int hops = 8;
  std::uint64_t payload_bytes = 4096;
  /// Cluster run seed: per-node injection jitter and every pipe's fault
  /// streams derive from it (shard-count-independent).
  std::uint64_t seed = 1;
  /// Mean gap between a node's token injections (jittered per node).
  sim::SimTime inject_gap = sim::microseconds(50);
  NicConfig nic;
  LinkConfig link;  ///< propagation must be > 0 when shards > 1
};

struct RelayRingResult {
  std::uint64_t tokens_retired = 0;
  std::uint64_t hops_total = 0;  ///< frames delivered across all pipes
  /// Virtual time of the last token retirement (max over shards —
  /// order-independent, so shard-layout-stable).
  sim::SimTime completion_time = 0;
  std::vector<std::uint64_t> per_node_retired;    ///< node index order
  std::vector<std::uint64_t> per_pipe_delivered;  ///< pipe index order
  std::vector<std::uint64_t> per_pipe_dropped;    ///< pipe index order
  /// FNV-1a fold of everything above, in index order: one word to
  /// compare across shard counts / schedulers / packet paths.
  std::uint64_t checksum = 0;
};

/// Builds the ring on construction (nodes partitioned across the shard
/// group, relay daemons and token sources spawned), runs on demand.
/// Tests may attach per-shard tracers or apply fault plans between
/// construction and run().
class RelayRing {
 public:
  struct State;  ///< internal per-run counters (defined in relay_ring.cpp)

  explicit RelayRing(const RelayRingOptions& opt);
  ~RelayRing();
  RelayRing(const RelayRing&) = delete;
  RelayRing& operator=(const RelayRing&) = delete;

  sim::ShardGroup& group() noexcept { return group_; }
  Cluster& cluster() noexcept { return *cluster_; }

  /// Shard owning node `i` (contiguous block partition).
  int shard_of(int node) const noexcept {
    return static_cast<int>(static_cast<long long>(node) * opt_.shards /
                            opt_.nodes);
  }

  /// Runs the ring to completion (ShardGroup::run) and returns the
  /// canonical result.
  RelayRingResult run();

 private:
  RelayRingOptions opt_;
  sim::ShardGroup group_;
  // Destroyed before group_'s simulators: pipes and rings hold packet
  // descriptors that must die before any shard's arena.
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<State> state_;
};

}  // namespace pp::hw
