// Cluster builder: owns nodes and the packet pipes connecting them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "simcore/simulator.h"
#include "simhw/config.h"
#include "simhw/node.h"
#include "simhw/pipe.h"

namespace pp::hw {

class Cluster {
 public:
  /// `seed` is the cluster run seed: every pipe built by connect() derives
  /// its fault-injection stream from (seed, pipe name), so two pipes in
  /// one run never share a drop sequence and the same seed reproduces the
  /// same sequences on every run.
  explicit Cluster(sim::Simulator& sim, std::uint64_t seed = 1)
      : sim_(sim), seed_(seed) {}

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Node& add_node(const HostConfig& config) {
    return add_node(config, sim_);
  }

  /// Shard-aware overload: builds the node on an explicit simulator (one
  /// shard of a sim::ShardGroup). Pipes connected later derive each
  /// side's simulator from its node, so a link between nodes on
  /// different shards automatically becomes a cross-shard link.
  Node& add_node(const HostConfig& config, sim::Simulator& sim) {
    nodes_.push_back(
        std::make_unique<Node>(sim, static_cast<int>(nodes_.size()), config));
    return *nodes_.back();
  }

  /// A full-duplex link: one pipe per direction.
  struct Duplex {
    PacketPipe& forward;   ///< a -> b
    PacketPipe& backward;  ///< b -> a
  };

  Duplex connect(Node& a, Node& b, const NicConfig& nic,
                 const LinkConfig& link = {}) {
    const std::string base = nic.name + "[" + std::to_string(a.id()) + "-" +
                             std::to_string(b.id()) + "]";
    // Each pipe's driving simulator is its *source* node's: on a
    // sharded cluster the two directions of one duplex link may run on
    // different shards.
    pipes_.push_back(std::make_unique<PacketPipe>(a.simulator(), a, b, nic,
                                                  link, base + ">"));
    PacketPipe& fwd = *pipes_.back();
    pipes_.push_back(std::make_unique<PacketPipe>(b.simulator(), b, a, nic,
                                                  link, base + "<"));
    PacketPipe& bwd = *pipes_.back();
    fwd.set_fault_seed(faults::derive_seed(seed_, fwd.name()));
    bwd.set_fault_seed(faults::derive_seed(seed_, bwd.name()));
    return Duplex{fwd, bwd};
  }

  sim::Simulator& simulator() noexcept { return sim_; }
  std::uint64_t seed() const noexcept { return seed_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  Node& node(std::size_t i) { return *nodes_.at(i); }

  /// All pipes in creation order (forward/backward pairs interleaved);
  /// faults::apply() walks this to arm injectors by name match.
  std::vector<PacketPipe*> pipes() {
    std::vector<PacketPipe*> out;
    out.reserve(pipes_.size());
    for (auto& p : pipes_) out.push_back(p.get());
    return out;
  }

 private:
  sim::Simulator& sim_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<PacketPipe>> pipes_;
};

}  // namespace pp::hw
