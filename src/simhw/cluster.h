// Cluster builder: owns nodes and the packet pipes connecting them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "simcore/simulator.h"
#include "simhw/config.h"
#include "simhw/node.h"
#include "simhw/pipe.h"

namespace pp::hw {

class Cluster {
 public:
  explicit Cluster(sim::Simulator& sim) : sim_(sim) {}

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Node& add_node(const HostConfig& config) {
    nodes_.push_back(std::make_unique<Node>(
        sim_, static_cast<int>(nodes_.size()), config));
    return *nodes_.back();
  }

  /// A full-duplex link: one pipe per direction.
  struct Duplex {
    PacketPipe& forward;   ///< a -> b
    PacketPipe& backward;  ///< b -> a
  };

  Duplex connect(Node& a, Node& b, const NicConfig& nic,
                 const LinkConfig& link = {}) {
    const std::string base = nic.name + "[" + std::to_string(a.id()) + "-" +
                             std::to_string(b.id()) + "]";
    pipes_.push_back(
        std::make_unique<PacketPipe>(sim_, a, b, nic, link, base + ">"));
    PacketPipe& fwd = *pipes_.back();
    pipes_.push_back(
        std::make_unique<PacketPipe>(sim_, b, a, nic, link, base + "<"));
    PacketPipe& bwd = *pipes_.back();
    return Duplex{fwd, bwd};
  }

  sim::Simulator& simulator() noexcept { return sim_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  Node& node(std::size_t i) { return *nodes_.at(i); }

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<PacketPipe>> pipes_;
};

}  // namespace pp::hw
