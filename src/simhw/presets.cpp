#include "simhw/presets.h"

#include "simcore/time.h"

namespace pp::hw::presets {

using sim::microseconds;

HostConfig pentium4_pc() {
  HostConfig h;
  h.name = "p4-1.8";
  // Large uncached memcpy on PC133 SDRAM: ~200 MB/s. This single number
  // drives the 25-30 % large-message loss of every library that adds a
  // staging copy.
  h.copy_bandwidth = Rate::megabytes(200);
  h.pci_raw = Rate::megabytes(132);  // 32-bit 33 MHz theoretical
  h.pci_width_bits = 32;
  h.pci_dma_setup = microseconds(0.5);
  h.syscall_cost = microseconds(1.0);
  h.wakeup_cost = microseconds(3.0);
  h.proto_tx_cost = microseconds(4.0);
  h.proto_rx_cost = microseconds(4.0);
  return h;
}

HostConfig compaq_ds20() {
  HostConfig h;
  h.name = "ds20";
  h.copy_bandwidth = Rate::megabytes(320);
  h.cached_copy_bandwidth = Rate::megabytes(1500);
  h.pci_raw = Rate::megabytes(264);  // 64-bit 33 MHz theoretical
  h.pci_width_bits = 64;
  h.pci_dma_setup = microseconds(0.4);
  h.syscall_cost = microseconds(0.8);
  h.wakeup_cost = microseconds(2.5);
  h.proto_tx_cost = microseconds(3.0);
  h.proto_rx_cost = microseconds(3.5);
  return h;
}

NicConfig netgear_ga620() {
  NicConfig n;
  n.name = "ga620";
  n.link_rate = Rate::gigabits(1.0);
  n.mtu = 1500;
  n.max_mtu = 9000;  // AceNIC supports jumbo; the paper ran it at 1500
  n.pci64_capable = true;
  n.pci_efficiency = 0.75;
  n.driver_tx_cost = microseconds(3.0);
  n.driver_rx_cost = microseconds(6.5);
  // The paper: "latencies are poor under the new Linux 2.4.x kernel" —
  // the AceNIC firmware coalesces even sparse traffic.
  n.sparse_irq_delay = microseconds(90.0);
  n.busy_irq_delay = microseconds(8.0);
  return n;
}

NicConfig trendnet_teg_pcitx() {
  NicConfig n;
  n.name = "trendnet";
  n.link_rate = Rate::gigabits(1.0);
  n.mtu = 1500;
  n.max_mtu = 1500;
  n.pci64_capable = false;
  n.pci_efficiency = 0.72;
  n.driver_tx_cost = microseconds(3.0);
  n.driver_rx_cost = microseconds(5.5);
  n.sparse_irq_delay = microseconds(40.0);
  // The ns8382x receive path stalls for close to a millisecond under
  // load; this is why raw TCP flattens at ~290 Mbps until the socket
  // buffers reach 512 kB.
  n.busy_irq_delay = microseconds(900.0);
  return n;
}

NicConfig netgear_ga622() {
  NicConfig n = trendnet_teg_pcitx();
  n.name = "ga622";
  n.pci64_capable = true;
  // Same silicon, and a driver the paper calls immature even for raw TCP.
  n.driver_rx_cost = microseconds(10.0);
  n.busy_irq_delay = microseconds(1100.0);
  return n;
}

NicConfig syskonnect_sk9843(std::uint32_t mtu) {
  NicConfig n;
  n.name = "sk9843";
  n.link_rate = Rate::gigabits(1.0);
  n.mtu = mtu;
  n.max_mtu = 9000;
  n.pci64_capable = true;
  n.pci_efficiency = 0.68;
  n.driver_tx_cost = microseconds(2.0);
  n.driver_rx_cost = microseconds(5.0);
  n.sparse_irq_delay = microseconds(18.0);
  n.busy_irq_delay = microseconds(220.0);
  return n;
}

NicConfig myrinet_pci64a() {
  NicConfig n;
  n.name = "myrinet";
  n.link_rate = Rate::gigabits(1.28);
  n.mtu = 8192;  // GM fragments long messages into large fabric packets
  n.max_mtu = 8192;
  n.frame_overhead = 16;
  n.pci64_capable = true;
  n.pci_efficiency = 0.78;
  n.os_bypass = true;
  // Host involvement is zero on the fast path (OS bypass); the 66 MHz
  // LANai does the per-packet work on the I/O path.
  n.driver_tx_cost = 0;
  n.driver_rx_cost = 0;
  n.nic_tx_cost = microseconds(2.5);
  n.nic_rx_cost = microseconds(2.5);
  // Polling receive: no interrupt on the fast path.
  n.sparse_irq_delay = microseconds(1.0);
  n.busy_irq_delay = microseconds(1.0);
  return n;
}

NicConfig giganet_clan() {
  NicConfig n;
  n.name = "clan";
  n.link_rate = Rate::gigabits(1.25);
  n.mtu = 4096;
  n.max_mtu = 4096;
  n.frame_overhead = 8;
  n.pci64_capable = false;
  n.pci_efficiency = 0.79;
  n.os_bypass = true;
  n.driver_tx_cost = 0;
  n.driver_rx_cost = 0;
  n.nic_tx_cost = microseconds(1.0);
  n.nic_rx_cost = microseconds(1.0);
  n.sparse_irq_delay = microseconds(1.0);
  n.busy_irq_delay = microseconds(1.0);
  return n;
}

NicConfig myrinet_ip_over_gm() {
  NicConfig n = myrinet_pci64a();
  n.name = "ip-over-gm";
  n.os_bypass = false;  // the kernel TCP/IP stack is back in the path
  n.driver_tx_cost = microseconds(3.0);
  n.driver_rx_cost = microseconds(6.0);
  // The Ethernet-emulation path cannot use GM's optimized DMA engine.
  n.pci_efficiency = 0.55;
  n.sparse_irq_delay = microseconds(25.0);
  n.busy_irq_delay = microseconds(25.0);
  return n;
}

NicConfig syskonnect_mvia() {
  NicConfig n = syskonnect_sk9843(1500);
  n.name = "mvia-sk98lin";
  n.os_bypass = true;  // no TCP/IP; M-VIA's own costs are charged by viasim
  n.driver_tx_cost = 0;
  n.driver_rx_cost = 0;
  // M-VIA's interrupt path skips the whole TCP/IP softirq chain.
  n.sparse_irq_delay = microseconds(8.0);
  return n;
}

NicConfig fast_ethernet() {
  NicConfig n;
  n.name = "fe100";
  n.link_rate = Rate::megabits(100.0);
  n.mtu = 1500;
  n.max_mtu = 1500;
  n.pci64_capable = false;
  n.pci_efficiency = 0.9;
  n.driver_tx_cost = microseconds(2.0);
  n.driver_rx_cost = microseconds(4.0);
  n.sparse_irq_delay = microseconds(20.0);
  n.busy_irq_delay = microseconds(20.0);
  return n;
}

LinkConfig back_to_back() {
  LinkConfig l;
  l.propagation = microseconds(0.5);
  return l;
}

LinkConfig switched() {
  LinkConfig l;
  l.propagation = microseconds(3.0);
  return l;
}

}  // namespace pp::hw::presets
