// SHMEM on an SMP node: the paper's NetPIPE module list includes SHMEM
// (§2), the one-sided put/get API of Cray/SGI machines that GPSHMEM [13]
// ported to clusters. The natural 2002 substrate for it is the other
// kind of parallelism the testbed had: the dual-processor Compaq DS20.
//
// Model: two processors sharing one memory system. A put/get is a
// memcpy through the shared memory bus plus a small API cost; the
// receiving side notices completion by polling a flag (cache-coherent
// spin). This yields the classic intra-node NetPIPE curve — sub-µs
// latency, memory-speed bandwidth — the upper bound every network in
// the paper is chasing.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "netpipe/transport.h"
#include "simcore/resource.h"
#include "simcore/simulator.h"
#include "simcore/sync.h"
#include "simcore/task.h"

namespace pp::shmem {

struct SmpConfig {
  std::string name = "smp";
  /// Shared memory-bus copy bandwidth (both processors contend on it).
  sim::Rate copy_bandwidth = sim::Rate::megabytes(320);
  /// Per-call API cost (symmetric-heap address arithmetic, barriers on
  /// the write buffer).
  sim::SimTime api_cost = sim::nanoseconds(200);
  /// Cache-coherency visibility delay for the completion flag.
  sim::SimTime flag_latency = sim::nanoseconds(300);
  /// Polling granularity of the waiting processor.
  sim::SimTime poll_interval = sim::nanoseconds(100);
};

/// A dual-processor node: two CPU contexts sharing one memory bus.
class SmpNode {
 public:
  SmpNode(sim::Simulator& sim, SmpConfig config)
      : sim_(sim),
        config_(std::move(config)),
        membus_(sim, config_.name + ".membus", config_.copy_bandwidth),
        cpu0_(sim, config_.name + ".cpu0", config_.copy_bandwidth),
        cpu1_(sim, config_.name + ".cpu1", config_.copy_bandwidth) {}

  sim::Simulator& simulator() { return sim_; }
  const SmpConfig& config() const { return config_; }
  sim::RateResource& membus() { return membus_; }
  sim::RateResource& cpu(int pe) { return pe == 0 ? cpu0_ : cpu1_; }

 private:
  sim::Simulator& sim_;
  SmpConfig config_;
  sim::RateResource membus_;
  sim::RateResource cpu0_;
  sim::RateResource cpu1_;
};

/// One processing element's SHMEM handle.
class ShmemPe {
 public:
  ShmemPe(SmpNode& node, int pe) : node_(node), pe_(pe) {}

  int pe() const { return pe_; }

  /// shmem_putmem: one-sided copy into the peer's symmetric heap.
  /// Completes when the data is globally visible.
  sim::Task<void> put(std::uint64_t bytes);

  /// shmem_getmem: one-sided copy from the peer's symmetric heap.
  sim::Task<void> get(std::uint64_t bytes);

  /// shmem_fence + flag write: make prior puts visible and notify.
  sim::Task<void> notify();

  /// shmem_wait-style spin on a flag the peer will set.
  sim::Task<void> wait_notify();

  SmpNode& node() { return node_; }

  std::uint64_t puts() const { return puts_; }
  std::uint64_t gets() const { return gets_; }

 private:
  friend class ShmemPair;
  SmpNode& node_;
  int pe_;
  // Pending notifications from the peer (set pointers at construction).
  std::shared_ptr<sim::ByteSemaphore> inbox_;
  std::shared_ptr<sim::ByteSemaphore> outbox_;
  std::uint64_t puts_ = 0;
  std::uint64_t gets_ = 0;
};

/// NetPIPE SHMEM module: a send is a one-sided put plus a completion
/// flag; a receive is just waiting on the flag (the data was placed
/// directly — the whole point of one-sided communication).
class ShmemTransport final : public netpipe::Transport {
 public:
  explicit ShmemTransport(ShmemPe& pe, std::string name = "SHMEM (SMP)")
      : pe_(pe), name_(std::move(name)) {}

  sim::Task<void> send(std::uint64_t bytes) override {
    co_await pe_.put(bytes);
    co_await pe_.notify();
  }
  sim::Task<void> recv(std::uint64_t /*bytes*/) override {
    return pe_.wait_notify();
  }
  std::string name() const override { return name_; }

 private:
  ShmemPe& pe_;
  std::string name_;
};

/// Two PEs on one SMP node, wired together.
class ShmemPair {
 public:
  explicit ShmemPair(sim::Simulator& sim, SmpConfig config = {});

  ShmemPe& pe0() { return *pe0_; }
  ShmemPe& pe1() { return *pe1_; }
  SmpNode& node() { return node_; }

 private:
  SmpNode node_;
  std::unique_ptr<ShmemPe> pe0_;
  std::unique_ptr<ShmemPe> pe1_;
};

}  // namespace pp::shmem
