#include "shmemsim/shmem.h"

namespace pp::shmem {

sim::Task<void> ShmemPe::put(std::uint64_t bytes) {
  puts_ += 1;
  co_await node_.cpu(pe_).occupy(node_.config().api_cost);
  // The copy streams through the shared bus; the issuing CPU drives it.
  co_await node_.membus().transfer(bytes);
}

sim::Task<void> ShmemPe::get(std::uint64_t bytes) {
  gets_ += 1;
  co_await node_.cpu(pe_).occupy(node_.config().api_cost);
  co_await node_.membus().transfer(bytes);
}

sim::Task<void> ShmemPe::notify() {
  co_await node_.cpu(pe_).occupy(node_.config().api_cost);
  // Store fence + flag write; visible after the coherency latency.
  auto box = outbox_;
  node_.simulator().call_after(node_.config().flag_latency,
                               [box] { box->release(1); });
}

sim::Task<void> ShmemPe::wait_notify() {
  // Spin-wait: each poll costs a cache probe on this PE.
  while (!inbox_->try_acquire(1)) {
    co_await node_.cpu(pe_).occupy(node_.config().poll_interval / 2);
    co_await node_.simulator().delay(node_.config().poll_interval);
  }
}

ShmemPair::ShmemPair(sim::Simulator& sim, SmpConfig config)
    : node_(sim, std::move(config)) {
  pe0_ = std::make_unique<ShmemPe>(node_, 0);
  pe1_ = std::make_unique<ShmemPe>(node_, 1);
  auto a_to_b = std::make_shared<sim::ByteSemaphore>(sim, 0);
  auto b_to_a = std::make_shared<sim::ByteSemaphore>(sim, 0);
  pe0_->outbox_ = a_to_b;
  pe0_->inbox_ = b_to_a;
  pe1_->outbox_ = b_to_a;
  pe1_->inbox_ = a_to_b;
}

}  // namespace pp::shmem
