// End-to-end delivery oracles and a conservation ledger for chaos runs.
//
// The chaos tier (src/chaos) judges runs by counters and throughput —
// verdicts that cannot see a stack silently corrupting, duplicating,
// reordering or ghost-delivering a message across a crash epoch. This
// layer closes that gap: an opt-in, observe-only Auditor attached to the
// Simulator (mirroring TraceRecorder) that
//
//  (a) tags every library-level message at injection with a seeded
//      identity (stream id, seq, payload checksum) and verifies at the
//      moment of *consumption* that it arrives intact (size + checksum),
//      exactly once, and FIFO per stream;
//  (b) keeps a conservation ledger: at end of run every injected message
//      must be accounted for exactly once — delivered-intact, or (when
//      the run ended in a ProtocolFailure such as ConnectionFailed /
//      max_delivery_attempts) failed-by-decision. Any message still
//      outstanding after a *completed* run is an unaccounted-bytes
//      violation;
//  (c) checks protocol invariants independently of the stacks' own
//      logic: TCP sequence-space contiguity per connection epoch, GM/VIA
//      epoch fencing (no fragment accepted from a stale power epoch),
//      and no descriptor consumption after connection teardown.
//
// Contract: the layer is zero-cost when off (every hook sits behind one
// `simulator.auditor()` pointer test, exactly like tracing) and
// bit-identity-preserving when on — hooks only read protocol state, never
// write it, so audited runs produce identical event sequences, counters
// and traces (asserted by the differential suite). Violations carry a
// structured report (stream, seq, expected/actual, fault-plan echo) and
// upgrade the chaos verdict to `error` regardless of counters, feeding
// `faults::minimize` the same way hangs do.
//
// Delivery is counted at *consumption* (the receive call that hands the
// message to the application), not at staging: a message parked in an
// unexpected queue can be legitimately wiped by a receiver crash and
// re-delivered by the sender's watchdog under a new epoch, which is
// correct protocol behaviour, not a duplicate.
//
// Thread safety: one simulation may span several shard worker threads
// (src/simcore/shard), and a VIA switched link can place the two ends of
// a stream on different shards — every public hook takes an internal
// mutex. The mutex is host-side bookkeeping only and never perturbs
// simulation event order.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pp::audit {

/// Message identity carried alongside (never inside) protocol state:
/// WireMeta for the stream libraries, Frag descriptor fields for GM/VIA,
/// the send-token side channel for raw TCP. `stream == 0` means untagged
/// (no auditor attached when the message was injected) and every hook
/// ignores it.
struct MsgTag {
  std::uint32_t stream = 0;  ///< registered stream handle; 0 = untagged
  std::uint64_t seq = 0;     ///< dense per-stream injection index
  std::uint64_t check = 0;   ///< seeded payload checksum (see Auditor)
};

enum class ViolationKind {
  kChecksumMismatch,        ///< payload checksum differs from injection
  kSizeMismatch,            ///< delivered byte count differs
  kDuplicateDelivery,       ///< message consumed more than once
  kFifoViolation,           ///< consumed behind the stream's watermark
  kCorruptAccepted,         ///< corrupted fragment passed a receiver's CRC
  kStaleEpochDelivery,      ///< fragment accepted from a dead power epoch
  kSequenceRegression,      ///< TCP accepted non-contiguous in-epoch bytes
  kCompletionAfterTeardown, ///< consumption after the pair was failed
  kUnaccounted,             ///< injected, run completed, never consumed
};

const char* to_string(ViolationKind kind);

/// One structured oracle failure. `expected`/`actual` are the compared
/// quantities for the kind (checksum values, byte counts, seq numbers);
/// `detail` names the endpoint or stream involved.
struct Violation {
  ViolationKind kind{};
  std::uint32_t stream = 0;
  std::uint64_t seq = 0;
  std::uint64_t expected = 0;
  std::uint64_t actual = 0;
  std::string detail;
};

/// Multi-line human-readable report (one line per violation, prefixed
/// with the fault plan when the auditor was given one).
std::string to_string(const Violation& v);

/// How the run under audit ended — determines how the conservation
/// ledger closes at finalize().
enum class RunOutcome {
  kCompleted,  ///< run_netpipe returned: everything must be consumed
  kFailed,     ///< ProtocolFailure: outstanding = failed-by-decision
  kAborted,    ///< hang/budget/deadlock: conservation is indeterminate
};

const char* to_string(RunOutcome outcome);

/// End-of-run accounting. `injected == delivered + failed_by_decision`
/// exactly when `violations == 0` and the outcome was not kAborted.
struct Summary {
  RunOutcome outcome = RunOutcome::kCompleted;
  std::uint64_t streams = 0;
  std::uint64_t injected = 0;             ///< messages tagged at injection
  std::uint64_t injected_bytes = 0;
  std::uint64_t delivered = 0;            ///< consumed intact, exactly once
  std::uint64_t failed_by_decision = 0;   ///< outstanding in a kFailed run
  std::uint64_t unaccounted = 0;          ///< outstanding in a kCompleted run
  std::uint64_t violations = 0;           ///< total, may exceed reports.size()
  std::vector<Violation> reports;         ///< first kMaxReports, sorted
  std::string fault_plan;                 ///< pp.faultplan/1 echo (optional)

  bool has_violations() const noexcept { return violations != 0; }
};

/// Renders the summary's violation reports (empty string when clean).
std::string report_text(const Summary& s);

/// The oracle itself. Create one per run, attach with
/// `Simulator::set_auditor` *before* constructing protocol objects
/// (streams register in constructors), run, then `finalize()` with the
/// observed outcome. All hooks are no-ops on tags with stream == 0.
class Auditor {
 public:
  /// Violation reports kept verbatim; past this only the count grows.
  static constexpr std::size_t kMaxReports = 64;

  explicit Auditor(std::uint64_t seed = 1) : seed_(seed) {}
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  /// Attaches the pp.faultplan/1 text echoed into violation reports.
  void set_fault_plan(std::string text);

  // --- registration --------------------------------------------------------

  /// Registers a message stream (one per directed sender->receiver
  /// library channel). Handles start at 1; 0 stays "untagged".
  std::uint32_t register_stream(std::string name);

  // --- message lifecycle ---------------------------------------------------

  /// Called by the sending library once per message, before the first
  /// fragment/segment leaves: assigns the next dense seq and the seeded
  /// payload checksum, and opens a ledger entry.
  MsgTag on_inject(std::uint32_t stream, std::uint64_t bytes);

  /// Called at the single point where the receiving library hands the
  /// message to the application. `after_teardown` reports consumption on
  /// a pair that was already failed (kCompletionAfterTeardown).
  void on_deliver(const MsgTag& tag, std::uint64_t bytes,
                  bool after_teardown = false);

  // --- protocol invariant hooks -------------------------------------------

  /// Called by a GM/VIA rx daemon at the moment it *accepts* a data
  /// fragment into a partial message (after its own fencing/CRC ladder).
  /// An accepted fragment stamped with a foreign power epoch is a fencing
  /// violation; an accepted corrupted fragment is a CRC violation.
  void on_accept_fragment(const MsgTag& tag, std::uint32_t frag_epoch,
                          std::uint32_t rx_epoch, bool corrupted);

  /// Called by a TCP endpoint when it accepts in-order payload bytes.
  /// Verifies sequence-space contiguity within a connection epoch
  /// (epoch changes legitimately resynchronize the stream).
  void on_tcp_accept(const std::string& endpoint, std::uint32_t epoch,
                     std::uint64_t seq, std::uint64_t payload);

  // --- raw-TCP token side channel ------------------------------------------

  /// Packs a tag into a nonzero Socket::send token (raw TCP carries no
  /// per-message metadata; the token rides the existing integrity-test
  /// side channel). Stream handles and seqs are both far below the
  /// packing limits for any simulated run.
  static std::uint64_t pack_token(const MsgTag& tag) noexcept {
    return (static_cast<std::uint64_t>(tag.stream) << 40) |
           (tag.seq & ((1ull << 40) - 1));
  }

  /// Consumption hook for tokens drained via Socket::take_tokens().
  /// Size/checksum are vouched for by the ledger entry itself (byte-
  /// stream integrity is TCP's checksum machinery, audited separately by
  /// on_tcp_accept contiguity).
  void on_tcp_token(std::uint64_t token, bool after_teardown = false);

  // --- end of run ----------------------------------------------------------

  /// Closes the ledger. Idempotent: the first call fixes the summary
  /// (later calls return the cached result). Reports are sorted by
  /// (kind, stream, seq, detail) so multi-shard runs stay deterministic.
  const Summary& finalize(RunOutcome outcome);

  /// Finalized summary; finalize(kCompleted) is implied if never called.
  const Summary& summary();

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    std::uint64_t check = 0;
  };
  struct Stream {
    std::string name;
    std::uint64_t next_seq = 0;   ///< next injection index
    std::uint64_t watermark = 0;  ///< lowest seq not yet consumed in order
    std::map<std::uint64_t, Entry> outstanding;
  };
  struct TcpWatch {
    bool seen = false;
    std::uint32_t epoch = 0;
    std::uint64_t expect = 0;
  };

  std::uint64_t checksum(std::uint32_t stream, std::uint64_t seq,
                         std::uint64_t bytes) const noexcept;
  void record(Violation v);  // requires mu_ held
  void deliver_locked(const MsgTag& tag, bool verify_payload,
                      std::uint64_t bytes, bool after_teardown);

  std::uint64_t seed_;
  std::mutex mu_;
  std::vector<Stream> streams_;          // index = handle - 1
  std::map<std::string, TcpWatch> tcp_;  // per-endpoint contiguity watch
  std::uint64_t injected_ = 0;
  std::uint64_t injected_bytes_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t violations_ = 0;
  std::vector<Violation> reports_;
  std::string fault_plan_;
  bool finalized_ = false;
  Summary summary_;
};

}  // namespace pp::audit
