#include "audit/audit.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <tuple>
#include <utility>

namespace pp::audit {

namespace {

/// splitmix64 finalizer — the same cheap, well-mixed hash the fault
/// subsystem uses for per-rule seed derivation.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kChecksumMismatch: return "checksum-mismatch";
    case ViolationKind::kSizeMismatch: return "size-mismatch";
    case ViolationKind::kDuplicateDelivery: return "duplicate-delivery";
    case ViolationKind::kFifoViolation: return "fifo-violation";
    case ViolationKind::kCorruptAccepted: return "corrupt-accepted";
    case ViolationKind::kStaleEpochDelivery: return "stale-epoch-delivery";
    case ViolationKind::kSequenceRegression: return "sequence-regression";
    case ViolationKind::kCompletionAfterTeardown:
      return "completion-after-teardown";
    case ViolationKind::kUnaccounted: return "unaccounted";
  }
  return "?";
}

const char* to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kCompleted: return "completed";
    case RunOutcome::kFailed: return "failed";
    case RunOutcome::kAborted: return "aborted";
  }
  return "?";
}

std::string to_string(const Violation& v) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "audit violation: %s stream=%" PRIu32 " (%s) seq=%" PRIu64
                " expected=%" PRIu64 " actual=%" PRIu64,
                to_string(v.kind), v.stream, v.detail.c_str(), v.seq,
                v.expected, v.actual);
  return buf;
}

std::string report_text(const Summary& s) {
  if (!s.has_violations()) return {};
  std::string out;
  for (const Violation& v : s.reports) {
    out += to_string(v);
    out += '\n';
  }
  if (s.violations > s.reports.size()) {
    out += "... and " +
           std::to_string(s.violations - s.reports.size()) +
           " more violation(s)\n";
  }
  if (!s.fault_plan.empty()) {
    out += "fault plan:\n";
    out += s.fault_plan;
    if (out.back() != '\n') out += '\n';
  }
  return out;
}

void Auditor::set_fault_plan(std::string text) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_plan_ = std::move(text);
}

std::uint32_t Auditor::register_stream(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  streams_.push_back(Stream{std::move(name), 0, 0, {}});
  return static_cast<std::uint32_t>(streams_.size());
}

std::uint64_t Auditor::checksum(std::uint32_t stream, std::uint64_t seq,
                                std::uint64_t bytes) const noexcept {
  // A synthetic payload checksum: the simulation carries byte *counts*,
  // not byte *contents*, so "the payload" of message (stream, seq) is by
  // definition this seeded mix. Comparing it at consumption catches any
  // misalignment between the identity a receiver consumed and the
  // message the sender injected (crossed metadata, resurrected entries,
  // wrong-length completion) — exactly what a real checksum would flag.
  return mix64(seed_ ^ mix64((static_cast<std::uint64_t>(stream) << 32) ^
                             mix64(seq) ^ (bytes * 0x100000001b3ull)));
}

void Auditor::record(Violation v) {
  violations_ += 1;
  if (reports_.size() < kMaxReports) reports_.push_back(std::move(v));
}

MsgTag Auditor::on_inject(std::uint32_t stream, std::uint64_t bytes) {
  if (stream == 0) return {};
  std::lock_guard<std::mutex> lock(mu_);
  Stream& s = streams_.at(stream - 1);
  MsgTag tag;
  tag.stream = stream;
  tag.seq = s.next_seq++;
  tag.check = checksum(stream, tag.seq, bytes);
  s.outstanding.emplace(tag.seq, Entry{bytes, tag.check});
  injected_ += 1;
  injected_bytes_ += bytes;
  return tag;
}

void Auditor::deliver_locked(const MsgTag& tag, bool verify_payload,
                             std::uint64_t bytes, bool after_teardown) {
  Stream& s = streams_.at(tag.stream - 1);
  const auto it = s.outstanding.find(tag.seq);
  if (it == s.outstanding.end()) {
    // Never injected, or already consumed. Seqs are dense from 0, so a
    // seq below the injection counter was consumed before: a duplicate.
    record(Violation{ViolationKind::kDuplicateDelivery, tag.stream, tag.seq,
                     0, 1, s.name});
    return;
  }
  if (after_teardown) {
    record(Violation{ViolationKind::kCompletionAfterTeardown, tag.stream,
                     tag.seq, 0, 1, s.name});
  }
  if (tag.seq < s.watermark) {
    // Consumed behind a later message of the same stream: out of order.
    record(Violation{ViolationKind::kFifoViolation, tag.stream, tag.seq,
                     s.watermark, tag.seq, s.name});
  }
  if (verify_payload) {
    if (bytes != it->second.bytes) {
      record(Violation{ViolationKind::kSizeMismatch, tag.stream, tag.seq,
                       it->second.bytes, bytes, s.name});
    }
    if (tag.check != it->second.check) {
      record(Violation{ViolationKind::kChecksumMismatch, tag.stream, tag.seq,
                       it->second.check, tag.check, s.name});
    }
  }
  s.watermark = std::max(s.watermark, tag.seq + 1);
  s.outstanding.erase(it);
  delivered_ += 1;
}

void Auditor::on_deliver(const MsgTag& tag, std::uint64_t bytes,
                         bool after_teardown) {
  if (tag.stream == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  deliver_locked(tag, /*verify_payload=*/true, bytes, after_teardown);
}

void Auditor::on_tcp_token(std::uint64_t token, bool after_teardown) {
  MsgTag tag;
  tag.stream = static_cast<std::uint32_t>(token >> 40);
  tag.seq = token & ((1ull << 40) - 1);
  if (tag.stream == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  // The byte stream carries no per-message identity beyond the token
  // position itself; exactly-once, FIFO and conservation still apply.
  deliver_locked(tag, /*verify_payload=*/false, 0, after_teardown);
}

void Auditor::on_accept_fragment(const MsgTag& tag, std::uint32_t frag_epoch,
                                 std::uint32_t rx_epoch, bool corrupted) {
  if (tag.stream == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const Stream& s = streams_.at(tag.stream - 1);
  if (frag_epoch != rx_epoch) {
    record(Violation{ViolationKind::kStaleEpochDelivery, tag.stream, tag.seq,
                     rx_epoch, frag_epoch, s.name});
  }
  if (corrupted) {
    record(Violation{ViolationKind::kCorruptAccepted, tag.stream, tag.seq,
                     0, 1, s.name});
  }
}

void Auditor::on_tcp_accept(const std::string& endpoint, std::uint32_t epoch,
                            std::uint64_t seq, std::uint64_t payload) {
  std::lock_guard<std::mutex> lock(mu_);
  TcpWatch& w = tcp_[endpoint];
  if (!w.seen || w.epoch != epoch) {
    // A new connection epoch legitimately resynchronizes the stream
    // position (a restarted receiver rewinds to its consumed mark).
    w.seen = true;
    w.epoch = epoch;
    w.expect = seq + payload;
    return;
  }
  if (seq != w.expect) {
    record(Violation{ViolationKind::kSequenceRegression, 0, seq, w.expect,
                     seq, endpoint});
  }
  w.expect = std::max(w.expect, seq + payload);
}

const Summary& Auditor::finalize(RunOutcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  if (finalized_) return summary_;
  finalized_ = true;
  summary_.outcome = outcome;
  std::uint64_t outstanding = 0;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    Stream& s = streams_[i];
    outstanding += s.outstanding.size();
    if (outcome == RunOutcome::kCompleted) {
      // A run that ended normally has no excuse: every injected message
      // must have been consumed. Anything left is unaccounted bytes.
      for (const auto& [seq, e] : s.outstanding) {
        record(Violation{ViolationKind::kUnaccounted,
                         static_cast<std::uint32_t>(i + 1), seq, e.bytes, 0,
                         s.name});
      }
    }
  }
  if (outcome == RunOutcome::kCompleted) {
    summary_.unaccounted = outstanding;
  } else if (outcome == RunOutcome::kFailed) {
    // The run ended in a deliberate protocol decision (ConnectionFailed,
    // max_delivery_attempts): in-flight messages were failed by that
    // decision, which is a legal terminal state of the ledger.
    summary_.failed_by_decision = outstanding;
  }
  // kAborted (hang / budget / deadlock): the run was cut mid-flight, so
  // conservation is indeterminate — only in-run violations stand.
  summary_.streams = streams_.size();
  summary_.injected = injected_;
  summary_.injected_bytes = injected_bytes_;
  summary_.delivered = delivered_;
  summary_.violations = violations_;
  std::sort(reports_.begin(), reports_.end(),
            [](const Violation& a, const Violation& b) {
              return std::make_tuple(static_cast<int>(a.kind), a.stream,
                                     a.seq, a.detail, a.expected, a.actual) <
                     std::make_tuple(static_cast<int>(b.kind), b.stream,
                                     b.seq, b.detail, b.expected, b.actual);
            });
  summary_.reports = std::move(reports_);
  summary_.fault_plan = fault_plan_;
  return summary_;
}

const Summary& Auditor::summary() { return finalize(RunOutcome::kCompleted); }

}  // namespace pp::audit
