// Fault-injection knobs: plain config structs consumed by the hardware
// layer (simhw) plus the seed-derivation helper that keeps every injector
// deterministic yet decorrelated.
//
// This header is dependency-free (simcore only) so that simhw can include
// it without a cycle; the declarative FaultPlan that *applies* these
// configs to a built Cluster lives in faults/plan.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "simcore/time.h"

namespace pp::faults {

/// Deterministically derives an injector seed from a base seed and a
/// stable string (a pipe name, a rule tag). Two pipes in one run must
/// never share a drop sequence, and the same (base, name) pair must give
/// the same stream on every run and thread — so the name is folded in
/// FNV-1a style and finished with the SplitMix64 mix.
inline std::uint64_t derive_seed(std::uint64_t base, std::string_view name) {
  std::uint64_t h = 1469598103934665603ULL ^ base;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Per-link (one PacketPipe direction) fault model. All probabilities are
/// per-frame; everything defaults off, and an all-default config injects
/// nothing (the pipe keeps its exact lossless behaviour).
struct LinkFaultConfig {
  /// Independent (Bernoulli) frame loss probability.
  double loss = 0.0;

  // Gilbert–Elliott burst loss: a two-state Markov chain stepped once per
  // frame. Enabled when ge_good_to_bad > 0. The defaults model classic
  // bursts — lossless in the good state, deaf in the bad state.
  double ge_good_to_bad = 0.0;  ///< P(good -> bad) per frame; 0 disables GE
  double ge_bad_to_good = 0.25; ///< P(bad -> good) per frame
  double ge_loss_good = 0.0;    ///< loss probability while in the good state
  double ge_loss_bad = 1.0;     ///< loss probability while in the bad state

  /// Probability that a frame is delayed by `reorder_delay` extra
  /// propagation, letting later frames overtake it.
  double reorder = 0.0;
  sim::SimTime reorder_delay = sim::microseconds(50);

  /// Probability that a frame is duplicated (the copy is flagged
  /// Packet::injected_dup so receivers can model hardware dedup).
  double duplicate = 0.0;

  /// Probability that a frame arrives bit-corrupted (Packet::corrupted);
  /// checksumming receivers discard it on arrival.
  double corrupt = 0.0;

  /// Timed link flap: the link is deaf during the first `flap_down` of
  /// every `flap_period` window (both must be > 0 to enable). A pure
  /// function of simulated time, so flaps are reproducible by definition.
  sim::SimTime flap_period = 0;
  sim::SimTime flap_down = 0;

  bool ge_enabled() const noexcept { return ge_good_to_bad > 0.0; }
  bool flap_enabled() const noexcept {
    return flap_period > 0 && flap_down > 0;
  }
  bool any() const noexcept {
    return loss > 0.0 || ge_enabled() || reorder > 0.0 || duplicate > 0.0 ||
           corrupt > 0.0 || flap_enabled();
  }
};

/// The Gilbert–Elliott chain stepper shared by the wire fault injector
/// and the statistical tests: one transition draw per frame, then a loss
/// draw only when the current state's loss probability is nonzero. The
/// draw order is part of the determinism contract — changing it would
/// shift every downstream feature's RNG stream — so both consumers step
/// through this one implementation. Steady state: P(bad) =
/// g2b / (g2b + b2g); with ge_loss_bad = 1 the mean burst length is
/// 1 / ge_bad_to_good frames.
struct GilbertElliott {
  bool bad = false;

  /// Steps the chain once for one frame; returns true if the frame is
  /// lost. `rng.uniform()` must yield doubles in [0, 1).
  template <typename Rng>
  bool step(const LinkFaultConfig& cfg, Rng& rng) {
    if (bad) {
      if (rng.uniform() < cfg.ge_bad_to_good) bad = false;
    } else {
      if (rng.uniform() < cfg.ge_good_to_bad) bad = true;
    }
    const double pl = bad ? cfg.ge_loss_bad : cfg.ge_loss_good;
    return pl > 0.0 && rng.uniform() < pl;
  }
};

/// Per-NIC (receive side of one pipe) fault model.
struct NicFaultConfig {
  /// Rx descriptor ring size: frames arriving while this many are already
  /// queued for the host are dropped (ring overflow). 0 = unlimited.
  std::size_t ring_slots = 0;

  /// Probability that a receive interrupt is stalled by `irq_stall_time`
  /// (models a masked/starved interrupt line).
  double irq_stall = 0.0;
  sim::SimTime irq_stall_time = sim::microseconds(200);

  bool any() const noexcept { return ring_slots > 0 || irq_stall > 0.0; }
};

/// Host scheduler pauses: every `pause_period` the node's CPU is seized
/// for `pause_duration`, freezing all protocol work pinned to that CPU
/// (daemon housekeeping, a checkpoint stall, a noisy co-tenant).
struct HostFaultConfig {
  sim::SimTime pause_period = 0;    ///< 0 disables
  sim::SimTime pause_duration = 0;  ///< 0 disables
  sim::SimTime first_pause_at = 0;  ///< 0 = one full period in

  bool any() const noexcept { return pause_period > 0 && pause_duration > 0; }
};

/// Host crash/restart: at `at` the node loses power — every in-flight
/// frame on its NICs is dropped with a crash verdict, protocol state on
/// the node is gone. With mode kRestart the node reboots `downtime`
/// later under a new power epoch and the protocol stacks re-establish
/// their sessions; kPermanent leaves it dark (survivors' give-up caps
/// turn that into a clean `failed` verdict instead of a hang).
struct HostCrashConfig {
  enum class Mode { kRestart, kPermanent };

  sim::SimTime at = 0;  ///< crash instant; 0 disables the rule
  sim::SimTime downtime = sim::milliseconds(1.0);
  Mode mode = Mode::kRestart;

  bool any() const noexcept { return at > 0; }
  bool restarts() const noexcept { return any() && mode == Mode::kRestart; }
};

}  // namespace pp::faults
