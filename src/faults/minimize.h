// Delta-debugging (ddmin) minimization of failing fault plans.
//
// A chaos sweep hands back a randomly generated plan that makes a run
// fail; with half a dozen overlapping rules that plan says little about
// *why*. minimize() shrinks it to a 1-minimal reproducer: a plan that
// still fails the caller's oracle but from which no single rule can be
// removed. The classic Zeller/Hildebrandt ddmin over the flattened rule
// list (links + nics + hosts + crashes, in that order); the seed is
// carried unchanged since the surviving rules' injector streams derive
// from it.
//
// The oracle must be deterministic — the simulator guarantees that, so
// any oracle that just runs a simulation and classifies the outcome
// qualifies. Probe count is O(rules^2) in the worst case, fine for the
// handful of rules chaos plans carry.
#pragma once

#include <cstddef>
#include <functional>

#include "faults/plan.h"

namespace pp::faults {

/// Returns true when the candidate plan still reproduces the failure.
using Oracle = std::function<bool(const FaultPlan&)>;

struct MinimizeResult {
  FaultPlan plan;                 ///< 1-minimal failing plan
  int probes = 0;                 ///< oracle invocations performed
  std::size_t initial_rules = 0;  ///< rule count going in
  std::size_t final_rules = 0;    ///< rule count surviving
};

/// Shrinks `failing` to a 1-minimal plan under `still_fails`. Throws
/// std::invalid_argument when the input plan does not fail the oracle
/// (the first probe re-checks it — a minimizer fed a passing plan would
/// otherwise "minimize" it to garbage).
MinimizeResult minimize(const FaultPlan& failing, const Oracle& still_fails);

}  // namespace pp::faults
