#include "faults/plan_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pp::faults {

namespace {

constexpr const char* kMagic = "# pp.faultplan/1";

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_match(const std::string& m) { return m.empty() ? "*" : m; }

std::string fmt_node(int node) {
  return node < 0 ? "*" : std::to_string(node);
}

void append_link(std::ostringstream& os, const FaultPlan::LinkRule& r) {
  os << "link " << fmt_match(r.pipe_match);
  const LinkFaultConfig& c = r.cfg;
  if (c.loss > 0.0) os << " loss=" << fmt_double(c.loss);
  if (c.ge_enabled()) {
    os << " ge=" << fmt_double(c.ge_good_to_bad) << ":"
       << fmt_double(c.ge_bad_to_good) << ":" << fmt_double(c.ge_loss_good)
       << ":" << fmt_double(c.ge_loss_bad);
  }
  if (c.reorder > 0.0) {
    os << " reorder=" << fmt_double(c.reorder) << ":" << c.reorder_delay;
  }
  if (c.duplicate > 0.0) os << " dup=" << fmt_double(c.duplicate);
  if (c.corrupt > 0.0) os << " corrupt=" << fmt_double(c.corrupt);
  if (c.flap_enabled()) {
    os << " flap=" << c.flap_period << ":" << c.flap_down;
  }
  os << "\n";
}

void append_nic(std::ostringstream& os, const FaultPlan::NicRule& r) {
  os << "nic " << fmt_match(r.pipe_match);
  const NicFaultConfig& c = r.cfg;
  if (c.ring_slots > 0) os << " ring=" << c.ring_slots;
  if (c.irq_stall > 0.0) {
    os << " stall=" << fmt_double(c.irq_stall) << ":" << c.irq_stall_time;
  }
  os << "\n";
}

void append_host(std::ostringstream& os, const FaultPlan::HostRule& r) {
  os << "host " << fmt_node(r.node);
  const HostFaultConfig& c = r.cfg;
  if (c.pause_period > 0 || c.pause_duration > 0 || c.first_pause_at > 0) {
    os << " pause=" << c.pause_period << ":" << c.pause_duration << ":"
       << c.first_pause_at;
  }
  os << "\n";
}

void append_crash(std::ostringstream& os, const FaultPlan::CrashRule& r) {
  os << "crash " << fmt_node(r.node) << " at=" << r.cfg.at
     << " down=" << r.cfg.downtime << " mode="
     << (r.cfg.mode == HostCrashConfig::Mode::kRestart ? "restart"
                                                       : "permanent")
     << "\n";
}

[[noreturn]] void fail(int line_no, const std::string& what) {
  throw std::runtime_error("pp.faultplan line " + std::to_string(line_no) +
                           ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Splits "a:b:c" into fields; every parser below checks the count.
std::vector<std::string> split_fields(const std::string& v) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t colon = v.find(':', start);
    if (colon == std::string::npos) {
      out.push_back(v.substr(start));
      return out;
    }
    out.push_back(v.substr(start, colon - start));
    start = colon + 1;
  }
}

double parse_double(const std::string& s, int line_no) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') fail(line_no, "bad number '" + s + "'");
  return v;
}

std::int64_t parse_i64(const std::string& s, int line_no) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    fail(line_no, "bad integer '" + s + "'");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& s, int line_no) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    fail(line_no, "bad integer '" + s + "'");
  }
  return v;
}

/// Splits "key=value"; returns false when no '=' is present.
bool split_kv(const std::string& tok, std::string& key, std::string& val) {
  const std::size_t eq = tok.find('=');
  if (eq == std::string::npos) return false;
  key = tok.substr(0, eq);
  val = tok.substr(eq + 1);
  return true;
}

}  // namespace

std::string to_text(const FaultPlan& plan) {
  std::ostringstream os;
  os << kMagic << "\n";
  os << "seed " << plan.seed << "\n";
  for (const auto& r : plan.links) append_link(os, r);
  for (const auto& r : plan.nics) append_nic(os, r);
  for (const auto& r : plan.hosts) append_host(os, r);
  for (const auto& r : plan.crashes) append_crash(os, r);
  return os.str();
}

FaultPlan from_text(const std::string& text) {
  FaultPlan plan;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& kind = toks[0];

    if (kind == "seed") {
      if (toks.size() != 2) fail(line_no, "seed wants one value");
      plan.seed = parse_u64(toks[1], line_no);
      continue;
    }
    if (toks.size() < 2) fail(line_no, kind + " rule wants a match token");
    const std::string match = toks[1] == "*" ? "" : toks[1];

    std::string key, val;
    if (kind == "link") {
      LinkFaultConfig c;
      for (std::size_t i = 2; i < toks.size(); ++i) {
        if (!split_kv(toks[i], key, val)) fail(line_no, "expected key=value");
        const std::vector<std::string> f = split_fields(val);
        if (key == "loss" && f.size() == 1) {
          c.loss = parse_double(f[0], line_no);
        } else if (key == "ge" && f.size() == 4) {
          c.ge_good_to_bad = parse_double(f[0], line_no);
          c.ge_bad_to_good = parse_double(f[1], line_no);
          c.ge_loss_good = parse_double(f[2], line_no);
          c.ge_loss_bad = parse_double(f[3], line_no);
        } else if (key == "reorder" && f.size() == 2) {
          c.reorder = parse_double(f[0], line_no);
          c.reorder_delay = parse_i64(f[1], line_no);
        } else if (key == "dup" && f.size() == 1) {
          c.duplicate = parse_double(f[0], line_no);
        } else if (key == "corrupt" && f.size() == 1) {
          c.corrupt = parse_double(f[0], line_no);
        } else if (key == "flap" && f.size() == 2) {
          c.flap_period = parse_i64(f[0], line_no);
          c.flap_down = parse_i64(f[1], line_no);
        } else {
          fail(line_no, "unknown link key '" + toks[i] + "'");
        }
      }
      plan.add_link(match, c);
    } else if (kind == "nic") {
      NicFaultConfig c;
      for (std::size_t i = 2; i < toks.size(); ++i) {
        if (!split_kv(toks[i], key, val)) fail(line_no, "expected key=value");
        const std::vector<std::string> f = split_fields(val);
        if (key == "ring" && f.size() == 1) {
          c.ring_slots =
              static_cast<std::size_t>(parse_u64(f[0], line_no));
        } else if (key == "stall" && f.size() == 2) {
          c.irq_stall = parse_double(f[0], line_no);
          c.irq_stall_time = parse_i64(f[1], line_no);
        } else {
          fail(line_no, "unknown nic key '" + toks[i] + "'");
        }
      }
      plan.add_nic(match, c);
    } else if (kind == "host") {
      const int node =
          toks[1] == "*" ? -1
                         : static_cast<int>(parse_i64(toks[1], line_no));
      HostFaultConfig c;
      for (std::size_t i = 2; i < toks.size(); ++i) {
        if (!split_kv(toks[i], key, val)) fail(line_no, "expected key=value");
        const std::vector<std::string> f = split_fields(val);
        if (key == "pause" && f.size() == 3) {
          c.pause_period = parse_i64(f[0], line_no);
          c.pause_duration = parse_i64(f[1], line_no);
          c.first_pause_at = parse_i64(f[2], line_no);
        } else {
          fail(line_no, "unknown host key '" + toks[i] + "'");
        }
      }
      plan.add_host(node, c);
    } else if (kind == "crash") {
      const int node =
          toks[1] == "*" ? -1
                         : static_cast<int>(parse_i64(toks[1], line_no));
      HostCrashConfig c;
      for (std::size_t i = 2; i < toks.size(); ++i) {
        if (!split_kv(toks[i], key, val)) fail(line_no, "expected key=value");
        if (key == "at") {
          c.at = parse_i64(val, line_no);
        } else if (key == "down") {
          c.downtime = parse_i64(val, line_no);
        } else if (key == "mode") {
          if (val == "restart") {
            c.mode = HostCrashConfig::Mode::kRestart;
          } else if (val == "permanent") {
            c.mode = HostCrashConfig::Mode::kPermanent;
          } else {
            fail(line_no, "unknown crash mode '" + val + "'");
          }
        } else {
          fail(line_no, "unknown crash key '" + toks[i] + "'");
        }
      }
      plan.add_crash(node, c);
    } else {
      fail(line_no, "unknown rule kind '" + kind + "'");
    }
  }
  return plan;
}

FaultPlan read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("fault plan: cannot open " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return from_text(os.str());
}

void write_file(const std::string& path, const FaultPlan& plan) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("fault plan: cannot open " + path);
  f << to_text(plan);
  if (!f) throw std::runtime_error("fault plan: write failed for " + path);
}

}  // namespace pp::faults
