#include "faults/minimize.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace pp::faults {

namespace {

/// A rule's address in the original plan: which vector, which slot.
struct RuleRef {
  int kind = 0;  ///< 0=link 1=nic 2=host 3=crash
  std::size_t idx = 0;
};

FaultPlan build(const FaultPlan& base, const std::vector<RuleRef>& rules) {
  FaultPlan p;
  p.seed = base.seed;
  for (const RuleRef& r : rules) {
    switch (r.kind) {
      case 0: p.links.push_back(base.links[r.idx]); break;
      case 1: p.nics.push_back(base.nics[r.idx]); break;
      case 2: p.hosts.push_back(base.hosts[r.idx]); break;
      case 3: p.crashes.push_back(base.crashes[r.idx]); break;
    }
  }
  return p;
}

}  // namespace

MinimizeResult minimize(const FaultPlan& failing, const Oracle& still_fails) {
  std::vector<RuleRef> rules;
  for (std::size_t i = 0; i < failing.links.size(); ++i) {
    rules.push_back({0, i});
  }
  for (std::size_t i = 0; i < failing.nics.size(); ++i) {
    rules.push_back({1, i});
  }
  for (std::size_t i = 0; i < failing.hosts.size(); ++i) {
    rules.push_back({2, i});
  }
  for (std::size_t i = 0; i < failing.crashes.size(); ++i) {
    rules.push_back({3, i});
  }

  MinimizeResult out;
  out.initial_rules = rules.size();

  const auto probe = [&](const std::vector<RuleRef>& subset) {
    ++out.probes;
    return still_fails(build(failing, subset));
  };

  if (!probe(rules)) {
    throw std::invalid_argument(
        "faults::minimize: the input plan does not fail the oracle");
  }

  // ddmin proper: split into n chunks; try each chunk alone, then each
  // complement; refine granularity when neither reduces.
  std::size_t n = 2;
  while (rules.size() >= 2) {
    const std::size_t chunk = (rules.size() + n - 1) / n;
    bool reduced = false;

    for (std::size_t i = 0; i < rules.size() && !reduced; i += chunk) {
      const std::size_t end = std::min(i + chunk, rules.size());
      std::vector<RuleRef> subset(rules.begin() + static_cast<long>(i),
                                  rules.begin() + static_cast<long>(end));
      if (subset.size() == rules.size()) continue;
      if (probe(subset)) {
        rules = std::move(subset);
        n = 2;
        reduced = true;
      }
    }
    if (reduced) continue;

    if (n > 2) {
      // Complements only matter past binary granularity (at n = 2 each
      // complement *is* the other chunk, already probed above).
      for (std::size_t i = 0; i < rules.size() && !reduced; i += chunk) {
        const std::size_t end = std::min(i + chunk, rules.size());
        std::vector<RuleRef> complement;
        complement.reserve(rules.size() - (end - i));
        complement.insert(complement.end(), rules.begin(),
                          rules.begin() + static_cast<long>(i));
        complement.insert(complement.end(),
                          rules.begin() + static_cast<long>(end),
                          rules.end());
        if (probe(complement)) {
          rules = std::move(complement);
          n = std::max<std::size_t>(n - 1, 2);
          reduced = true;
        }
      }
    }
    if (reduced) continue;

    if (n >= rules.size()) break;  // single-rule granularity exhausted
    n = std::min(rules.size(), n * 2);
  }

  out.plan = build(failing, rules);
  out.final_rules = rules.size();
  return out;
}

}  // namespace pp::faults
