// Declarative fault plans.
//
// A FaultPlan is a seeded, composable description of every fault a run
// should suffer: link rules (loss/burst-loss/reorder/duplicate/corrupt/
// flap) and NIC rules matched against pipe names, plus host pause rules
// matched by node id. apply() walks a built Cluster and arms the matching
// injectors, deriving each injector's RNG stream from (plan seed, pipe
// name) so the same plan + seed reproduces the same fault sequence on
// every run and thread count, while no two pipes share a stream.
//
// An empty plan applied to a cluster changes nothing: runs stay
// bit-identical to an unfaulted run (regression-tested in test_faults).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/config.h"

namespace pp::hw {
class Cluster;
}

namespace pp::faults {

struct FaultPlan {
  /// Base seed every injector stream derives from (mixed with the pipe
  /// name via derive_seed, so this is the only knob runs need to vary).
  std::uint64_t seed = 1;

  /// Link/NIC rules match pipes whose name *contains* `pipe_match`
  /// (empty matches every pipe). Pipe names look like "myri2000[0-1]>".
  struct LinkRule {
    std::string pipe_match;
    LinkFaultConfig cfg;
  };
  struct NicRule {
    std::string pipe_match;
    NicFaultConfig cfg;
  };
  /// Host rules match by node id; node < 0 matches every node.
  struct HostRule {
    int node = -1;
    HostFaultConfig cfg;
  };
  /// Crash rules match by node id; node < 0 matches every node (a
  /// whole-cluster blackout — only useful with mode kRestart).
  struct CrashRule {
    int node = -1;
    HostCrashConfig cfg;
  };

  std::vector<LinkRule> links;
  std::vector<NicRule> nics;
  std::vector<HostRule> hosts;
  std::vector<CrashRule> crashes;

  FaultPlan& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  FaultPlan& add_link(std::string pipe_match, LinkFaultConfig cfg) {
    links.push_back({std::move(pipe_match), cfg});
    return *this;
  }
  FaultPlan& add_nic(std::string pipe_match, NicFaultConfig cfg) {
    nics.push_back({std::move(pipe_match), cfg});
    return *this;
  }
  FaultPlan& add_host(int node, HostFaultConfig cfg) {
    hosts.push_back({node, cfg});
    return *this;
  }
  FaultPlan& add_crash(int node, HostCrashConfig cfg) {
    crashes.push_back({node, cfg});
    return *this;
  }

  /// True when the plan arms nothing (rules whose configs are all-default
  /// count as nothing — applying them is a no-op).
  bool empty() const noexcept;
};

/// Convenience: a plan injecting Bernoulli loss `p` on every pipe.
FaultPlan uniform_loss_plan(double p, std::uint64_t seed = 1);

/// Arms every matching injector on `cluster`'s pipes and spawns host
/// pause daemons on matching nodes. Call after the cluster's topology is
/// built and before the run; applying an empty plan is a no-op.
void apply(const FaultPlan& plan, hw::Cluster& cluster);

}  // namespace pp::faults
