#include "faults/plan.h"

#include <string>

#include "simcore/simulator.h"
#include "simcore/task.h"
#include "simcore/tracing.h"
#include "simhw/cluster.h"
#include "simhw/node.h"
#include "simhw/pipe.h"

namespace pp::faults {

bool FaultPlan::empty() const noexcept {
  for (const auto& r : links) {
    if (r.cfg.any()) return false;
  }
  for (const auto& r : nics) {
    if (r.cfg.any()) return false;
  }
  for (const auto& r : hosts) {
    if (r.cfg.any()) return false;
  }
  for (const auto& r : crashes) {
    if (r.cfg.any()) return false;
  }
  return true;
}

FaultPlan uniform_loss_plan(double p, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  LinkFaultConfig cfg;
  cfg.loss = p;
  plan.add_link("", cfg);
  return plan;
}

namespace {

bool matches(const std::string& pipe_name, const std::string& pattern) {
  return pattern.empty() || pipe_name.find(pattern) != std::string::npos;
}

// Seizes the node's CPU for cfg.pause_duration every cfg.pause_period,
// freezing every coroutine charged to that CPU (protocol processing,
// copies, driver work). A daemon, so it never counts as deadlocked — and
// it retires itself once no real processes remain, so the event queue can
// drain and run() can finish.
sim::Task<void> pause_daemon(sim::Simulator& sim, hw::Node& node,
                             HostFaultConfig cfg) {
  const sim::SimTime first =
      cfg.first_pause_at > 0 ? cfg.first_pause_at : cfg.pause_period;
  co_await sim.delay(first);
  for (;;) {
    if (sim.live_processes() == 0) co_return;  // workload finished
    if (sim::TraceRecorder* t = sim.tracer()) {
      t->record_instant(node.cpu().name(), "host-pause", sim.now());
    }
    co_await node.cpu().occupy(cfg.pause_duration);
    co_await sim.delay(cfg.pause_period > cfg.pause_duration
                           ? cfg.pause_period - cfg.pause_duration
                           : cfg.pause_period);
  }
}

}  // namespace

void apply(const FaultPlan& plan, hw::Cluster& cluster) {
  for (hw::PacketPipe* pipe : cluster.pipes()) {
    for (const auto& rule : plan.links) {
      if (!rule.cfg.any() || !matches(pipe->name(), rule.pipe_match)) continue;
      pipe->set_link_faults(rule.cfg,
                            derive_seed(plan.seed, pipe->name() + "/link"));
    }
    for (const auto& rule : plan.nics) {
      if (!rule.cfg.any() || !matches(pipe->name(), rule.pipe_match)) continue;
      pipe->set_nic_faults(rule.cfg,
                           derive_seed(plan.seed, pipe->name() + "/nic"));
    }
  }
  for (const auto& rule : plan.hosts) {
    if (!rule.cfg.any()) continue;
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      hw::Node& node = cluster.node(i);
      if (rule.node >= 0 && rule.node != node.id()) continue;
      cluster.simulator().spawn_daemon(
          pause_daemon(cluster.simulator(), node, rule.cfg),
          node.cpu().name() + ".pause");
    }
  }
  for (const auto& rule : plan.crashes) {
    if (!rule.cfg.any()) continue;
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      hw::Node& node = cluster.node(i);
      if (rule.node >= 0 && rule.node != node.id()) continue;
      // Scheduled on the node's own simulator so a sharded cluster
      // crashes each node on the shard that owns its state.
      node.simulator().call_at(rule.cfg.at, [&node] { node.crash(); });
      if (rule.cfg.restarts()) {
        node.simulator().call_at(rule.cfg.at + rule.cfg.downtime,
                                 [&node] { node.restart(); });
      }
    }
  }
}

}  // namespace pp::faults
