// FaultPlan serialization: the `pp.faultplan/1` text format.
//
// One rule per line, whitespace-delimited, `#` comments:
//
//   # pp.faultplan/1
//   seed 42
//   link myri loss=0.01 ge=0.001:0.25:0:1 reorder=0.02:50000 dup=0.01
//   link * corrupt=0.001 flap=1000000:200000
//   nic eth ring=32 stall=0.01:200000
//   host 1 pause=1000000:100000:0
//   crash 0 at=500000 down=1000000 mode=restart
//
// The match token is a pipe-name substring (link/nic) or a node id
// (host/crash); `*` means match-everything (empty substring / node -1).
// Times are raw sim::SimTime integers (nanoseconds); probabilities are
// doubles printed with enough digits to round-trip exactly. Key groups a
// rule leaves at their defaults are omitted on write and optional on
// read, so a minimized reproducer is as short as its surviving knobs.
//
// This is the interchange format between the chaos sweep (which writes
// the failing plan), the ddmin minimizer (which shrinks it) and
// `netpipe_cli --fault-plan` (which replays it).
#pragma once

#include <string>

#include "faults/plan.h"

namespace pp::faults {

/// Serializes `plan` to pp.faultplan/1 text (ends with a newline).
std::string to_text(const FaultPlan& plan);

/// Parses pp.faultplan/1 text. Throws std::runtime_error with a
/// line-numbered message on malformed input.
FaultPlan from_text(const std::string& text);

/// File convenience wrappers (throw std::runtime_error on I/O error).
FaultPlan read_file(const std::string& path);
void write_file(const std::string& path, const FaultPlan& plan);

}  // namespace pp::faults
