#include "netpipe/runner.h"

#include <algorithm>
#include <cmath>

namespace pp::netpipe {

double RunResult::mbps_at(std::uint64_t bytes) const {
  double best = 0.0;
  double best_dist = 1e300;
  for (const auto& p : points) {
    const double dist = std::fabs(std::log2(static_cast<double>(p.bytes)) -
                                  std::log2(static_cast<double>(bytes)));
    if (dist < best_dist) {
      best_dist = dist;
      best = p.mbps();
    }
  }
  return best;
}

namespace {

sim::Task<void> pingpong_initiator(sim::Simulator& sim, Transport& t,
                                   const std::vector<std::uint64_t>& sizes,
                                   const RunOptions& opt,
                                   std::vector<DataPoint>& out) {
  for (std::uint64_t size : sizes) {
    for (int w = 0; w < opt.warmup; ++w) {
      co_await t.send(size);
      co_await t.recv(size);
    }
    const sim::SimTime t0 = sim.now();
    for (int r = 0; r < opt.repeats; ++r) {
      co_await t.send(size);
      co_await t.recv(size);
    }
    const sim::SimTime round = (sim.now() - t0) / opt.repeats;
    out.push_back(DataPoint{size, round / 2});
  }
}

sim::Task<void> pingpong_responder(Transport& t,
                                   const std::vector<std::uint64_t>& sizes,
                                   const RunOptions& opt) {
  for (std::uint64_t size : sizes) {
    for (int r = 0; r < opt.warmup + opt.repeats; ++r) {
      co_await t.recv(size);
      co_await t.send(size);
    }
  }
}

sim::Task<void> stream_sender(Transport& t,
                              const std::vector<std::uint64_t>& sizes,
                              const RunOptions& opt) {
  for (std::uint64_t size : sizes) {
    for (int r = 0; r < opt.warmup + opt.repeats; ++r) {
      co_await t.send(size);
    }
    // One small reply resynchronizes the pair between sizes.
    co_await t.recv(4);
  }
}

sim::Task<void> stream_receiver(sim::Simulator& sim, Transport& t,
                                const std::vector<std::uint64_t>& sizes,
                                const RunOptions& opt,
                                std::vector<DataPoint>& out) {
  for (std::uint64_t size : sizes) {
    for (int w = 0; w < opt.warmup; ++w) co_await t.recv(size);
    const sim::SimTime t0 = sim.now();
    for (int r = 0; r < opt.repeats; ++r) co_await t.recv(size);
    const sim::SimTime per = (sim.now() - t0) / opt.repeats;
    out.push_back(DataPoint{size, per});
    co_await t.send(4);
  }
}

}  // namespace

RunResult run_netpipe(sim::Simulator& simulator, Transport& a, Transport& b,
                      const RunOptions& options) {
  RunResult result;
  result.transport = a.name();
  const std::vector<std::uint64_t> sizes = make_schedule(options.schedule);

  if (options.streaming) {
    simulator.spawn(stream_sender(a, sizes, options), "np.stream.tx");
    simulator.spawn(
        stream_receiver(simulator, b, sizes, options, result.points),
        "np.stream.rx");
  } else {
    simulator.spawn(
        pingpong_initiator(simulator, a, sizes, options, result.points),
        "np.ping");
    simulator.spawn(pingpong_responder(b, sizes, options), "np.pong");
  }
  simulator.run();

  // Latency: average one-way time of the small-message points.
  double lat_sum = 0.0;
  int lat_n = 0;
  for (const auto& p : result.points) {
    if (p.bytes <= options.latency_cutoff && !options.streaming) {
      lat_sum += sim::to_microseconds(p.elapsed);
      ++lat_n;
    }
    result.max_mbps = std::max(result.max_mbps, p.mbps());
  }
  if (lat_n > 0) result.latency_us = lat_sum / lat_n;

  for (const auto& p : result.points) {
    if (p.mbps() >= 0.9 * result.max_mbps) {
      result.saturation_bytes = p.bytes;
      break;
    }
  }
  for (const auto& p : result.points) {
    if (p.mbps() >= 0.5 * result.max_mbps) {
      result.half_performance_bytes = p.bytes;
      break;
    }
  }
  return result;
}

}  // namespace pp::netpipe
