#include "netpipe/runner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simcore/tracing.h"

namespace pp::netpipe {

double RunResult::mbps_at(std::uint64_t bytes) const {
  if (points.empty()) {
    throw std::logic_error(
        "RunResult::mbps_at: no data points (empty or failed run)");
  }
  if (bytes == 0) {
    throw std::invalid_argument("RunResult::mbps_at: bytes must be > 0");
  }
  double best = 0.0;
  double best_dist = 1e300;
  for (const auto& p : points) {
    const double dist = std::fabs(std::log2(static_cast<double>(p.bytes)) -
                                  std::log2(static_cast<double>(bytes)));
    if (dist < best_dist) {
      best_dist = dist;
      best = p.mbps();
    }
  }
  return best;
}

namespace {

void mark_point(sim::Simulator& sim, const RunOptions& opt,
                std::uint64_t size) {
  if (!opt.mark_points) return;
  if (sim::TraceRecorder* t = sim.tracer()) {
    t->record_instant("netpipe", "size=" + std::to_string(size), sim.now());
  }
}

sim::Task<void> pingpong_initiator(sim::Simulator& sim, Transport& t,
                                   const std::vector<std::uint64_t>& sizes,
                                   const RunOptions& opt,
                                   std::vector<DataPoint>& out) {
  for (std::uint64_t size : sizes) {
    for (int w = 0; w < opt.warmup; ++w) {
      co_await t.send(size);
      co_await t.recv(size);
    }
    mark_point(sim, opt, size);
    const sim::SimTime t0 = sim.now();
    for (int r = 0; r < opt.repeats; ++r) {
      co_await t.send(size);
      co_await t.recv(size);
    }
    // One-way time in a single rounded division: splitting this into
    // /repeats then /2 truncated up to 2*repeats-1 ns per point.
    const sim::SimTime total = sim.now() - t0;
    const sim::SimTime half_rounds =
        2 * static_cast<sim::SimTime>(opt.repeats);
    out.push_back(DataPoint{size, (total + half_rounds / 2) / half_rounds});
  }
}

sim::Task<void> pingpong_responder(Transport& t,
                                   const std::vector<std::uint64_t>& sizes,
                                   const RunOptions& opt) {
  for (std::uint64_t size : sizes) {
    for (int r = 0; r < opt.warmup + opt.repeats; ++r) {
      co_await t.recv(size);
      co_await t.send(size);
    }
  }
}

sim::Task<void> stream_sender(Transport& t,
                              const std::vector<std::uint64_t>& sizes,
                              const RunOptions& opt) {
  for (std::uint64_t size : sizes) {
    for (int r = 0; r < opt.warmup + opt.repeats; ++r) {
      co_await t.send(size);
    }
    // One small reply resynchronizes the pair between sizes.
    co_await t.recv(4);
  }
}

sim::Task<void> stream_receiver(sim::Simulator& sim, Transport& t,
                                const std::vector<std::uint64_t>& sizes,
                                const RunOptions& opt,
                                std::vector<DataPoint>& out) {
  for (std::uint64_t size : sizes) {
    for (int w = 0; w < opt.warmup; ++w) co_await t.recv(size);
    mark_point(sim, opt, size);
    const sim::SimTime t0 = sim.now();
    for (int r = 0; r < opt.repeats; ++r) co_await t.recv(size);
    const sim::SimTime per = (sim.now() - t0) / opt.repeats;
    out.push_back(DataPoint{size, per});
    co_await t.send(4);
  }
}

}  // namespace

RunResult run_netpipe(sim::Simulator& simulator, Transport& a, Transport& b,
                      const RunOptions& options) {
  RunResult result;
  result.transport = a.name();
  const std::vector<std::uint64_t> sizes = make_schedule(options.schedule);
  if (sizes.empty()) {
    throw std::invalid_argument(
        "run_netpipe: empty message schedule (min_bytes > max_bytes?) for "
        "transport " +
        result.transport);
  }

  if (options.streaming) {
    simulator.spawn(stream_sender(a, sizes, options), "np.stream.tx");
    simulator.spawn(
        stream_receiver(simulator, b, sizes, options, result.points),
        "np.stream.rx");
  } else {
    simulator.spawn(
        pingpong_initiator(simulator, a, sizes, options, result.points),
        "np.ping");
    simulator.spawn(pingpong_responder(b, sizes, options), "np.pong");
  }
  simulator.run();

  result.counters = a.counters();
  result.counters += b.counters();

  if (audit::Auditor* aud = simulator.auditor()) {
    result.audit = std::make_shared<audit::Summary>(
        aud->finalize(audit::RunOutcome::kCompleted));
  }

  // Latency: average one-way time of the small-message points. Streaming
  // mode measures throughput only, so latency_us stays NaN ("absent")
  // there rather than reading as a measured 0.0.
  double lat_sum = 0.0;
  int lat_n = 0;
  for (const auto& p : result.points) {
    if (p.bytes <= options.latency_cutoff && !options.streaming) {
      lat_sum += sim::to_microseconds(p.elapsed);
      ++lat_n;
    }
    result.max_mbps = std::max(result.max_mbps, p.mbps());
  }
  if (lat_n > 0) result.latency_us = lat_sum / lat_n;

  for (const auto& p : result.points) {
    if (p.mbps() >= 0.9 * result.max_mbps) {
      result.saturation_bytes = p.bytes;
      break;
    }
  }
  for (const auto& p : result.points) {
    if (p.mbps() >= 0.5 * result.max_mbps) {
      result.half_performance_bytes = p.bytes;
      break;
    }
  }
  return result;
}

}  // namespace pp::netpipe
