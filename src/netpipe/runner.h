// The NetPIPE ping-pong driver.
//
// For each size in the schedule it bounces messages between the two
// transports several times and records the averaged round trip. Timing in
// the simulator is exact, but the repeat machinery is kept because it is
// part of NetPIPE's methodology (and the first iteration legitimately
// differs: cold interrupt-mitigation state, unprimed windows).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "netpipe/schedule.h"
#include "netpipe/transport.h"
#include "simcore/simulator.h"
#include "simcore/time.h"

namespace pp::netpipe {

struct RunOptions {
  ScheduleOptions schedule;
  /// Ping-pong repetitions averaged per data point.
  int repeats = 3;
  /// Warm-up bounces before the timed repetitions of each point.
  int warmup = 1;
  /// Bytes at or below which a point counts toward the latency estimate
  /// (the paper: "round trip time divided by two for messages smaller
  /// than 64 bytes").
  std::uint64_t latency_cutoff = 64;
  /// Streaming mode (NetPIPE -s): unidirectional flood instead of
  /// ping-pong.
  bool streaming = false;
  /// When a TraceRecorder is attached to the simulator, drop an instant
  /// on the "netpipe" track at the start of each size's timed phase so
  /// protocol events can be correlated with the measured point. No
  /// effect (and no cost) without a recorder.
  bool mark_points = true;
};

struct DataPoint {
  std::uint64_t bytes = 0;
  sim::SimTime elapsed = 0;  ///< averaged one-way transfer time
  double mbps() const {
    return elapsed > 0 ? static_cast<double>(bytes) * 8.0 /
                             sim::to_seconds(elapsed) / 1e6
                       : 0.0;
  }
};

struct RunResult {
  std::string transport;
  std::vector<DataPoint> points;

  /// Both transports' protocol-event totals, summed (whole-connection
  /// view: each socket end / port reports its own direction once).
  ProtocolCounters counters;

  /// Small-message latency: average one-way time for points <= cutoff.
  /// NaN when the run did not measure latency (streaming mode, or no
  /// point at or below the cutoff) — check has_latency() before use.
  double latency_us = std::numeric_limits<double>::quiet_NaN();
  bool has_latency() const { return !std::isnan(latency_us); }
  /// Peak throughput over the whole curve.
  double max_mbps = 0.0;
  /// Smallest message size reaching 90 % of the peak ("saturation").
  std::uint64_t saturation_bytes = 0;
  /// The classic n_1/2: smallest message achieving half the peak rate —
  /// the latency/bandwidth crossover NetPIPE's authors popularized.
  std::uint64_t half_performance_bytes = 0;

  /// Throughput at the data point closest to `bytes`.
  double mbps_at(std::uint64_t bytes) const;

  /// Delivery-oracle accounting, stamped when an audit::Auditor was
  /// attached to the simulator for this run (null otherwise). The runner
  /// finalizes the ledger as kCompleted — a run that returns normally has
  /// no excuse for unconsumed messages.
  std::shared_ptr<const audit::Summary> audit;
};

/// Runs a NetPIPE measurement between transports `a` and `b` (which must
/// already be connected to each other). Drives `simulator.run()`.
RunResult run_netpipe(sim::Simulator& simulator, Transport& a, Transport& b,
                      const RunOptions& options = {});

}  // namespace pp::netpipe
