// Where-did-the-time-go breakdown: the paper's stated first step is "to
// identify where the performance is being lost and determine why"; this
// report does it mechanically from the simulator's resource accounting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "simhw/node.h"
#include "simhw/pipe.h"

namespace pp::netpipe {

/// One resource's share of a measured interval.
struct BreakdownRow {
  std::string resource;
  double busy_fraction = 0.0;   ///< of the measured wall-clock interval
  std::uint64_t operations = 0;
  std::uint64_t bytes = 0;
};

struct Breakdown {
  sim::SimTime interval = 0;
  std::vector<BreakdownRow> rows;

  /// The busiest resource — the bottleneck candidate.
  const BreakdownRow* bottleneck() const;
};

/// Snapshots the resource counters of two nodes and a duplex link;
/// diff two snapshots around a transfer to get the breakdown.
class BreakdownProbe {
 public:
  BreakdownProbe(hw::Node& a, hw::Node& b, hw::PacketPipe& fwd,
                 hw::PacketPipe& bwd);

  /// Captures the current counters as the interval start.
  void start();

  /// Produces the breakdown for [start(), now].
  Breakdown finish() const;

 private:
  struct Sample {
    sim::SimTime at = 0;
    std::vector<sim::ResourceStats> stats;
  };
  Sample sample() const;

  sim::Simulator* sim_ = nullptr;
  std::vector<sim::RateResource*> resources_;
  std::vector<std::string> labels_;
  Sample start_;
};

void print_breakdown(std::ostream& os, const Breakdown& b);

}  // namespace pp::netpipe
