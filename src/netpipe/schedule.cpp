#include "netpipe/schedule.h"

#include <algorithm>
#include <cmath>

namespace pp::netpipe {

std::vector<std::uint64_t> make_schedule(const ScheduleOptions& opt) {
  std::vector<std::uint64_t> sizes;
  const std::uint32_t per = std::max<std::uint32_t>(opt.points_per_doubling, 1);
  const std::uint64_t floor_bytes = std::max<std::uint64_t>(opt.min_bytes, 1);
  // Exponential base progression with `per` points per doubling.
  double x = static_cast<double>(floor_bytes);
  const double growth = std::pow(2.0, 1.0 / static_cast<double>(per));
  std::uint64_t last_base = 0;
  while (true) {
    const auto base = static_cast<std::uint64_t>(std::llround(x));
    if (base > opt.max_bytes) break;
    if (base != last_base) {
      last_base = base;
      // The lower perturbed point is dropped when it would underflow or
      // fall below min_bytes (e.g. min_bytes <= perturbation).
      if (opt.perturbation > 0 && base > opt.perturbation &&
          base - opt.perturbation >= floor_bytes) {
        sizes.push_back(base - opt.perturbation);
      }
      sizes.push_back(base);
      if (opt.perturbation > 0) sizes.push_back(base + opt.perturbation);
    }
    x *= growth;
  }
  // The final perturbed point may exceed max_bytes by the perturbation;
  // that matches NetPIPE's behaviour of straddling the top size.
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  return sizes;
}

}  // namespace pp::netpipe
