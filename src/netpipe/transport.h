// The NetPIPE module interface.
//
// NetPIPE is protocol-independent: it drives anything that can send and
// receive a counted message. Each message-passing library (and each raw
// layer: TCP, GM, VIA) provides a Transport adapter; the Runner bounces
// messages between a pair of them.
#pragma once

#include <cstdint>
#include <string>

#include "netpipe/counters.h"
#include "simcore/task.h"

namespace pp::netpipe {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one `bytes`-long message to the peer transport.
  virtual sim::Task<void> send(std::uint64_t bytes) = 0;

  /// Receives exactly one message of `bytes` length from the peer.
  virtual sim::Task<void> recv(std::uint64_t bytes) = 0;

  virtual std::string name() const = 0;

  /// Cumulative protocol-event totals seen from this end (read after a
  /// run; run_netpipe sums both transports into RunResult::counters).
  virtual ProtocolCounters counters() const { return {}; }
};

}  // namespace pp::netpipe
