// NetPIPE's message-size schedule: sizes at regular (exponential)
// intervals, each with slight perturbations, "to provide a complete test
// of the system" (paper §2) — the perturbed points straddle internal
// buffer and packet boundaries.
#pragma once

#include <cstdint>
#include <vector>

namespace pp::netpipe {

struct ScheduleOptions {
  std::uint64_t min_bytes = 1;
  std::uint64_t max_bytes = 8ull << 20;
  /// Perturbation delta around each base size (NetPIPE default: 3).
  std::uint32_t perturbation = 3;
  /// Base points per doubling of the message size (1 = powers of two).
  std::uint32_t points_per_doubling = 1;
};

/// Returns the sorted, de-duplicated list of message sizes to test.
std::vector<std::uint64_t> make_schedule(const ScheduleOptions& opt = {});

}  // namespace pp::netpipe
