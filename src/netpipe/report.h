// Reporting helpers: NetPIPE-style tables, terminal charts, and the
// paper-vs-measured check rows used by every bench binary.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "netpipe/runner.h"

namespace pp::netpipe {

/// A labelled measurement, one line in a figure.
struct Series {
  std::string label;
  const RunResult* result = nullptr;
};

/// NetPIPE's classic three-column listing for one run.
void print_run(std::ostream& os, const RunResult& r);

/// Multi-series throughput table at the given sizes (one row per size,
/// one column per series) — the numeric form of the paper's figures.
void print_comparison(std::ostream& os, const std::vector<Series>& series,
                      const std::vector<std::uint64_t>& sizes);

/// Log-x ASCII chart of throughput curves, one plot character per series.
std::string ascii_chart(const std::vector<Series>& series, int width = 72,
                        int height = 20);

/// One reproduced number: what the paper reports vs what we measured.
struct PaperCheck {
  std::string metric;
  double paper = 0.0;     ///< value (possibly OCR-reconstructed) from the paper
  double measured = 0.0;
  std::string note;
};

/// Prints the check table and returns the worst |log-ratio| seen (0 =
/// perfect), so benches can summarize fidelity.
double print_paper_checks(std::ostream& os,
                          const std::vector<PaperCheck>& checks);

/// Writes "bytes time_us mbps" rows to a whitespace-separated file that
/// gnuplot or any plotting tool can consume.
void write_dat(const std::string& path, const RunResult& r);

/// Human-readable byte count ("64", "8k", "2M").
std::string format_bytes(std::uint64_t bytes);

}  // namespace pp::netpipe
