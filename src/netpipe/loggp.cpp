#include "netpipe/loggp.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace pp::netpipe {

LogGpFit fit_loggp(const RunResult& r) {
  LogGpFit fit;
  if (r.points.size() < 4) return fit;

  // Intercept: the average time of the smallest decade of messages.
  const std::uint64_t small_cutoff =
      std::max<std::uint64_t>(r.points.front().bytes * 8, 64);
  double a_sum = 0;
  int a_n = 0;
  for (const auto& p : r.points) {
    if (p.bytes <= small_cutoff) {
      a_sum += sim::to_microseconds(p.elapsed);
      ++a_n;
    }
  }
  fit.o_plus_L_us = a_n > 0 ? a_sum / a_n : 0.0;

  // Slope: least squares of (time - a) / n over the top size decade,
  // where the per-byte term dominates.
  const std::uint64_t large_cutoff = r.points.back().bytes / 8;
  double num = 0, den = 0;
  for (const auto& p : r.points) {
    if (p.bytes >= large_cutoff) {
      const double n = static_cast<double>(p.bytes);
      const double t_us = sim::to_microseconds(p.elapsed) - fit.o_plus_L_us;
      num += n * t_us;
      den += n * n;
    }
  }
  if (den <= 0) return fit;
  const double g_us_per_byte = num / den;
  fit.g_ns_per_byte = g_us_per_byte * 1e3;
  if (g_us_per_byte > 0) {
    // 1 byte per G microseconds -> 8/G megabits per second.
    fit.r_inf_mbps = 8.0 / g_us_per_byte;
    fit.n_half_bytes = fit.o_plus_L_us / g_us_per_byte;
  }

  // Fit quality across the whole curve.
  double sq = 0;
  int n_pts = 0;
  for (const auto& p : r.points) {
    const double model =
        fit.o_plus_L_us + static_cast<double>(p.bytes) * g_us_per_byte;
    const double meas = sim::to_microseconds(p.elapsed);
    if (meas > 0) {
      const double rel = (model - meas) / meas;
      sq += rel * rel;
      ++n_pts;
    }
  }
  fit.rms_rel_error = n_pts > 0 ? std::sqrt(sq / n_pts) : 0.0;
  return fit;
}

void print_loggp(std::ostream& os, const std::string& label,
                 const LogGpFit& fit) {
  os << std::left << std::setw(24) << label << std::right << std::fixed
     << "  o+L " << std::setw(7) << std::setprecision(1) << fit.o_plus_L_us
     << " us   G " << std::setw(7) << std::setprecision(3)
     << fit.g_ns_per_byte << " ns/B   r_inf " << std::setw(6)
     << std::setprecision(0) << fit.r_inf_mbps << " Mbps   n1/2 "
     << std::setw(8) << std::setprecision(0) << fit.n_half_bytes
     << " B   rms " << std::setprecision(2) << fit.rms_rel_error << "\n";
}

}  // namespace pp::netpipe
