// LogGP parameter extraction from a measured NetPIPE curve.
//
// The LogGP model (Alexandrov et al.) describes a network by the time of
// an n-byte message:  t(n) = (o_s + L + o_r) + n * G — a fixed per-message
// term and a per-byte gap. NetPIPE curves are exactly the data needed to
// fit it, and the fitted parameters compress a whole figure into two
// numbers per library: what you pay per message and what you pay per
// byte. (The paper's "50 % of the raw performance can be lost in the
// message-passing layer" is a statement about G; its latency table is a
// statement about o+L.)
#pragma once

#include <iosfwd>

#include "netpipe/runner.h"

namespace pp::netpipe {

struct LogGpFit {
  /// Fixed per-message cost: sender overhead + wire latency + receiver
  /// overhead (microseconds).
  double o_plus_L_us = 0.0;
  /// Per-byte gap (nanoseconds per byte).
  double g_ns_per_byte = 0.0;
  /// Asymptotic bandwidth implied by G (Mbps).
  double r_inf_mbps = 0.0;
  /// The model's half-performance point, (o+L)/G (bytes).
  double n_half_bytes = 0.0;
  /// Root-mean-square relative error of the fit over the curve — large
  /// values flag protocol regime changes (rendezvous dips, window
  /// limits) that a two-parameter model cannot express.
  double rms_rel_error = 0.0;
};

/// Least-squares fit of t(n) = a + n*G over the measured points (the
/// intercept is refined from the small-message region, the slope from
/// the large-message region, as is standard practice).
LogGpFit fit_loggp(const RunResult& r);

void print_loggp(std::ostream& os, const std::string& label,
                 const LogGpFit& fit);

}  // namespace pp::netpipe
