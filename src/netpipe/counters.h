// Per-run protocol-event totals: the numeric twin of the trace-event
// instrumentation. Each transport reports the counters its layers can
// see; run_netpipe() sums both ends of a measurement so a RunResult
// carries connection-wide totals. Fields a layer has no mechanism for
// stay zero (raw GM never retransmits, raw TCP never does rendezvous).
#pragma once

#include <cstdint>

namespace pp::netpipe {

struct ProtocolCounters {
  // TCP layer (per-connection, both directions once summed).
  std::uint64_t data_segments = 0;
  std::uint64_t acks = 0;             ///< pure ACKs (no piggybacked data)
  std::uint64_t retransmits = 0;      ///< go-back-N rewinds (incl. RTO)
  std::uint64_t fast_retransmits = 0; ///< dup-ACK-triggered rewinds
  std::uint64_t checksum_drops = 0;   ///< corrupted segments discarded
  std::uint64_t reconnects = 0;       ///< crash/restart sessions
                                      ///< re-established (SYN handshakes
                                      ///< completed after the first)
  // Hardware layer.
  std::uint64_t wire_drops = 0;       ///< frames lost to fault injection
  // Message-passing library layer.
  std::uint64_t rendezvous_handshakes = 0;  ///< RTS/CTS exchanges
  std::uint64_t rendezvous_retries = 0;     ///< RTS watchdog re-sends
  std::uint64_t delivery_failures = 0;      ///< GM/VIA timeout retransmits
  std::uint64_t staged_bytes = 0;     ///< bytes through library staging
                                      ///< buffers (p4 copies, GM/VIA
                                      ///< unexpected arrivals)
  std::uint64_t relay_fragments = 0;  ///< daemon-route hops (pvmd, lamd)
  std::uint64_t rdma_transfers = 0;   ///< VIA RDMA-write handshakes

  ProtocolCounters& operator+=(const ProtocolCounters& o) {
    data_segments += o.data_segments;
    acks += o.acks;
    retransmits += o.retransmits;
    fast_retransmits += o.fast_retransmits;
    checksum_drops += o.checksum_drops;
    reconnects += o.reconnects;
    wire_drops += o.wire_drops;
    rendezvous_handshakes += o.rendezvous_handshakes;
    rendezvous_retries += o.rendezvous_retries;
    delivery_failures += o.delivery_failures;
    staged_bytes += o.staged_bytes;
    relay_fragments += o.relay_fragments;
    rdma_transfers += o.rdma_transfers;
    return *this;
  }
};

}  // namespace pp::netpipe
