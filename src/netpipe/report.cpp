#include "netpipe/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>

namespace pp::netpipe {

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(bytes >> 20));
  } else if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%lluk",
                  static_cast<unsigned long long>(bytes >> 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

void print_run(std::ostream& os, const RunResult& r) {
  os << "# NetPIPE: " << r.transport << "\n";
  os << "# latency ";
  if (r.has_latency()) {
    os << std::fixed << std::setprecision(1) << r.latency_us << " us";
  } else {
    os << "n/a";
  }
  os << ", max " << std::fixed << std::setprecision(0) << r.max_mbps
     << " Mbps, 90% at " << format_bytes(r.saturation_bytes) << "\n";
  os << std::right << std::setw(10) << "bytes" << std::setw(14) << "time(us)"
     << std::setw(12) << "Mbps" << "\n";
  for (const auto& p : r.points) {
    os << std::setw(10) << p.bytes << std::setw(14) << std::setprecision(2)
       << std::fixed << sim::to_microseconds(p.elapsed) << std::setw(12)
       << std::setprecision(2) << p.mbps() << "\n";
  }
}

void print_comparison(std::ostream& os, const std::vector<Series>& series,
                      const std::vector<std::uint64_t>& sizes) {
  os << std::right << std::setw(10) << "bytes";
  for (const auto& s : series) os << std::setw(12) << s.label.substr(0, 11);
  os << "\n";
  for (std::uint64_t size : sizes) {
    os << std::setw(10) << format_bytes(size);
    for (const auto& s : series) {
      os << std::setw(12) << std::fixed << std::setprecision(1)
         << s.result->mbps_at(size);
    }
    os << "\n";
  }
}

std::string ascii_chart(const std::vector<Series>& series, int width,
                        int height) {
  if (series.empty() || width < 20 || height < 5) return {};
  double max_mbps = 0.0;
  std::uint64_t min_b = UINT64_MAX, max_b = 1;
  for (const auto& s : series) {
    for (const auto& p : s.result->points) {
      max_mbps = std::max(max_mbps, p.mbps());
      min_b = std::min(min_b, p.bytes);
      max_b = std::max(max_b, p.bytes);
    }
  }
  if (max_mbps <= 0.0 || min_b >= max_b) return {};
  const double lx0 = std::log2(static_cast<double>(min_b));
  const double lx1 = std::log2(static_cast<double>(max_b));
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  const char marks[] = "*+o#x%@&";
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = marks[si % (sizeof(marks) - 1)];
    for (const auto& p : series[si].result->points) {
      const double fx = (std::log2(static_cast<double>(p.bytes)) - lx0) /
                        (lx1 - lx0);
      const double fy = p.mbps() / max_mbps;
      const int x = std::min(width - 1, static_cast<int>(fx * (width - 1)));
      const int y = std::min(height - 1,
                             static_cast<int>(fy * (height - 1)));
      grid[static_cast<std::size_t>(height - 1 - y)]
          [static_cast<std::size_t>(x)] = mark;
    }
  }
  std::string out;
  char head[64];
  std::snprintf(head, sizeof(head), "Mbps (max %.0f)\n", max_mbps);
  out += head;
  for (const auto& row : grid) {
    out += "|";
    out += row;
    out += "\n";
  }
  out += "+";
  out.append(static_cast<std::size_t>(width), '-');
  out += "\n ";
  out += format_bytes(min_b);
  out.append(static_cast<std::size_t>(std::max(1, width - 12)), ' ');
  out += format_bytes(max_b);
  out += " (message size, log)\n";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += " ";
    out += marks[si % (sizeof(marks) - 1)];
    out += " = " + series[si].label + "\n";
  }
  return out;
}

double print_paper_checks(std::ostream& os,
                          const std::vector<PaperCheck>& checks) {
  os << std::left << std::setw(44) << "metric" << std::right << std::setw(10)
     << "paper" << std::setw(10) << "measured" << std::setw(8) << "ratio"
     << "  note\n";
  double worst = 0.0;
  for (const auto& c : checks) {
    const double ratio = c.paper > 0 ? c.measured / c.paper : 0.0;
    if (ratio > 0) worst = std::max(worst, std::fabs(std::log(ratio)));
    os << std::left << std::setw(44) << c.metric << std::right
       << std::setw(10) << std::fixed << std::setprecision(1) << c.paper
       << std::setw(10) << c.measured << std::setw(8) << std::setprecision(2)
       << ratio << "  " << c.note << "\n";
  }
  return worst;
}

void write_dat(const std::string& path, const RunResult& r) {
  std::ofstream f(path);
  f << "# " << r.transport << "\n# bytes time_us mbps\n";
  for (const auto& p : r.points) {
    f << p.bytes << " " << sim::to_microseconds(p.elapsed) << " " << p.mbps()
      << "\n";
  }
}

}  // namespace pp::netpipe
