#include "netpipe/breakdown.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace pp::netpipe {

const BreakdownRow* Breakdown::bottleneck() const {
  const BreakdownRow* best = nullptr;
  for (const auto& r : rows) {
    if (best == nullptr || r.busy_fraction > best->busy_fraction) best = &r;
  }
  return best;
}

BreakdownProbe::BreakdownProbe(hw::Node& a, hw::Node& b,
                               hw::PacketPipe& fwd, hw::PacketPipe& bwd)
    : sim_(&a.simulator()) {
  resources_ = {&a.cpu(), &a.pci(), &fwd.wire(), &bwd.wire(), &b.pci(),
                &b.cpu()};
  labels_ = {"sender cpu (copies+protocol)", "sender pci dma",
             "wire (forward)", "wire (reverse/acks)", "receiver pci dma",
             "receiver cpu (copies+protocol)"};
  start();
}

BreakdownProbe::Sample BreakdownProbe::sample() const {
  Sample s;
  s.at = sim_->now();
  s.stats.reserve(resources_.size());
  for (const auto* r : resources_) s.stats.push_back(r->stats());
  return s;
}

void BreakdownProbe::start() { start_ = sample(); }

Breakdown BreakdownProbe::finish() const {
  Breakdown b;
  const Sample end_sample = sample();
  b.interval = end_sample.at - start_.at;
  for (std::size_t i = 0; i < resources_.size(); ++i) {
    BreakdownRow row;
    row.resource = labels_[i];
    const auto& s0 = start_.stats[i];
    const auto& s1 = end_sample.stats[i];
    row.operations = s1.operations - s0.operations;
    row.bytes = s1.bytes - s0.bytes;
    row.busy_fraction =
        b.interval > 0
            ? static_cast<double>(s1.busy - s0.busy) /
                  static_cast<double>(b.interval)
            : 0.0;
    b.rows.push_back(row);
  }
  return b;
}

void print_breakdown(std::ostream& os, const Breakdown& b) {
  os << "time breakdown over " << sim::format_time(b.interval) << ":\n";
  for (const auto& r : b.rows) {
    os << "  " << std::left << std::setw(32) << r.resource << std::right
       << std::fixed << std::setprecision(1) << std::setw(6)
       << 100.0 * r.busy_fraction << "% busy, " << r.operations << " ops\n";
  }
  if (const BreakdownRow* hot = b.bottleneck()) {
    os << "  -> bottleneck candidate: " << hot->resource << "\n";
  }
}

}  // namespace pp::netpipe
