// Transport adapters for the raw communication layers. Adapters for the
// message-passing libraries live with the libraries in mp/.
#pragma once

#include <string>
#include <utility>

#include "audit/audit.h"
#include "netpipe/transport.h"
#include "tcpsim/socket.h"

namespace pp::netpipe {

/// Counter totals visible from one TCP socket end: its own direction's
/// segments/ACKs/retransmits plus fault-injection drops on its outbound
/// pipe (tx_wire_drops, NOT the connection-wide wire_drops — so summing
/// both ends of a connection covers each direction exactly once).
inline ProtocolCounters tcp_socket_counters(const tcp::Socket& s) {
  ProtocolCounters c;
  const tcp::SocketStats& st = s.stats();
  c.data_segments = st.data_segments_sent;
  c.acks = st.acks_sent;
  c.retransmits = st.retransmits;
  c.fast_retransmits = st.fast_retransmits;
  c.checksum_drops = st.checksum_drops;
  c.reconnects = st.reconnects;
  c.wire_drops = s.tx_wire_drops();
  return c;
}

/// NetPIPE's TCP module: drives a raw socket.
///
/// With an Auditor attached (audit/audit.h), each send is tagged at
/// injection and its identity rides the socket's existing send-token side
/// channel (raw TCP carries no per-message metadata on the wire); recv
/// drains the consumed tokens into the oracle. Without an auditor no
/// token is ever passed, so the byte stream and all protocol behaviour
/// are exactly as before.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(tcp::Socket socket, std::string name = "raw TCP")
      : socket_(std::move(socket)), name_(std::move(name)) {
    if (audit::Auditor* aud = socket_.node().simulator().auditor()) {
      audit_stream_ =
          aud->register_stream(name_ + " " + socket_.trace_track());
    }
  }

  sim::Task<void> send(std::uint64_t bytes) override {
    if (audit::Auditor* aud = socket_.node().simulator().auditor()) {
      const audit::MsgTag tag = aud->on_inject(audit_stream_, bytes);
      return socket_.send(bytes, audit::Auditor::pack_token(tag));
    }
    return socket_.send(bytes);
  }
  sim::Task<void> recv(std::uint64_t bytes) override {
    co_await socket_.recv_exact(bytes);
    if (audit::Auditor* aud = socket_.node().simulator().auditor()) {
      for (std::uint64_t token : socket_.take_tokens()) {
        aud->on_tcp_token(token, /*after_teardown=*/socket_.failed());
      }
    }
  }
  hw::Node& node() { return socket_.node(); }
  std::string name() const override { return name_; }
  ProtocolCounters counters() const override {
    return tcp_socket_counters(socket_);
  }

  tcp::Socket& socket() { return socket_; }

 private:
  tcp::Socket socket_;
  std::string name_;
  std::uint32_t audit_stream_ = 0;  ///< delivery-oracle stream (0 = off)
};

}  // namespace pp::netpipe
