// Transport adapters for the raw communication layers. Adapters for the
// message-passing libraries live with the libraries in mp/.
#pragma once

#include <string>
#include <utility>

#include "netpipe/transport.h"
#include "tcpsim/socket.h"

namespace pp::netpipe {

/// NetPIPE's TCP module: drives a raw socket.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(tcp::Socket socket, std::string name = "raw TCP")
      : socket_(std::move(socket)), name_(std::move(name)) {}

  sim::Task<void> send(std::uint64_t bytes) override {
    return socket_.send(bytes);
  }
  sim::Task<void> recv(std::uint64_t bytes) override {
    return socket_.recv_exact(bytes);
  }
  hw::Node& node() { return socket_.node(); }
  std::string name() const override { return name_; }

  tcp::Socket& socket() { return socket_; }

 private:
  tcp::Socket socket_;
  std::string name_;
};

}  // namespace pp::netpipe
