// Transport adapters for the raw communication layers. Adapters for the
// message-passing libraries live with the libraries in mp/.
#pragma once

#include <string>
#include <utility>

#include "netpipe/transport.h"
#include "tcpsim/socket.h"

namespace pp::netpipe {

/// Counter totals visible from one TCP socket end: its own direction's
/// segments/ACKs/retransmits plus fault-injection drops on its outbound
/// pipe (tx_wire_drops, NOT the connection-wide wire_drops — so summing
/// both ends of a connection covers each direction exactly once).
inline ProtocolCounters tcp_socket_counters(const tcp::Socket& s) {
  ProtocolCounters c;
  const tcp::SocketStats& st = s.stats();
  c.data_segments = st.data_segments_sent;
  c.acks = st.acks_sent;
  c.retransmits = st.retransmits;
  c.fast_retransmits = st.fast_retransmits;
  c.checksum_drops = st.checksum_drops;
  c.reconnects = st.reconnects;
  c.wire_drops = s.tx_wire_drops();
  return c;
}

/// NetPIPE's TCP module: drives a raw socket.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(tcp::Socket socket, std::string name = "raw TCP")
      : socket_(std::move(socket)), name_(std::move(name)) {}

  sim::Task<void> send(std::uint64_t bytes) override {
    return socket_.send(bytes);
  }
  sim::Task<void> recv(std::uint64_t bytes) override {
    return socket_.recv_exact(bytes);
  }
  hw::Node& node() { return socket_.node(); }
  std::string name() const override { return name_; }
  ProtocolCounters counters() const override {
    return tcp_socket_counters(socket_);
  }

  tcp::Socket& socket() { return socket_; }

 private:
  tcp::Socket socket_;
  std::string name_;
};

}  // namespace pp::netpipe
