#include "mpi/mpi.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace pp::mpi {

namespace {

/// Collective operations use the top of the 16-bit user tag space; user
/// point-to-point tags should stay below kCollBase.
constexpr std::uint32_t kCollBase = 0xF000;
constexpr std::uint32_t kTagBarrier = kCollBase + 0x00;
constexpr std::uint32_t kTagBcast = kCollBase + 0x20;
constexpr std::uint32_t kTagReduce = kCollBase + 0x40;
constexpr std::uint32_t kTagAllreduce = kCollBase + 0x60;
constexpr std::uint32_t kTagGather = kCollBase + 0x80;
constexpr std::uint32_t kTagScatter = kCollBase + 0xA0;
constexpr std::uint32_t kTagAllgather = kCollBase + 0xC0;
constexpr std::uint32_t kTagAlltoall = kCollBase + 0xE0;

std::uint32_t next_context() {
  // Atomic so that communicators may be constructed from concurrent sweep
  // jobs (each on its own Simulator) without racing on the counter.
  static std::atomic<std::uint32_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

bool power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

std::vector<Comm> Comm::world(const std::vector<mp::Library*>& members) {
  const std::uint32_t ctx = next_context();
  std::vector<Comm> comms(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    assert(members[i]->rank() == static_cast<int>(i) &&
           "world members must be ordered by library rank");
    comms[i].members_ = members;
    comms[i].rank_ = static_cast<int>(i);
    comms[i].context_ = ctx;
  }
  return comms;
}

std::vector<Comm> Comm::split(const std::vector<Comm>& world,
                              const std::vector<int>& colors,
                              const std::vector<int>& keys) {
  assert(world.size() == colors.size() && world.size() == keys.size());
  std::vector<Comm> out(world.size());
  // Group world ranks by color, order each group by (key, world rank).
  std::vector<int> order(world.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return keys[static_cast<std::size_t>(a)] <
           keys[static_cast<std::size_t>(b)];
  });
  // Deterministic context per color: allocate in ascending color order.
  std::vector<int> seen_colors;
  for (int c : colors) {
    if (c >= 0 && std::find(seen_colors.begin(), seen_colors.end(), c) ==
                      seen_colors.end()) {
      seen_colors.push_back(c);
    }
  }
  std::sort(seen_colors.begin(), seen_colors.end());
  for (int color : seen_colors) {
    const std::uint32_t ctx = next_context();
    std::vector<mp::Library*> group;
    std::vector<int> group_world_ranks;
    for (int w : order) {
      if (colors[static_cast<std::size_t>(w)] == color) {
        group.push_back(world[static_cast<std::size_t>(w)].lib_ptr());
        group_world_ranks.push_back(w);
      }
    }
    for (std::size_t r = 0; r < group.size(); ++r) {
      Comm& c = out[static_cast<std::size_t>(group_world_ranks[r])];
      c.members_ = group;
      c.rank_ = static_cast<int>(r);
      c.context_ = ctx;
    }
  }
  return out;
}

sim::Task<void> Comm::combine(std::uint64_t bytes) {
  co_await lib().node().staging_copy(bytes);
}

// ---------------------------------------------------------------------------
// point to point
// ---------------------------------------------------------------------------

sim::Task<void> Comm::send(std::uint64_t count, Datatype type, int dest,
                           std::uint32_t tag) {
  return lib().send(global(dest), bytes_of(type, count), wire_tag(tag));
}

sim::Task<void> Comm::recv(std::uint64_t count, Datatype type, int source,
                           std::uint32_t tag) {
  return lib().recv(global(source), bytes_of(type, count), wire_tag(tag));
}

mp::Request Comm::isend(std::uint64_t count, Datatype type, int dest,
                        std::uint32_t tag) {
  return lib().isend(global(dest), bytes_of(type, count), wire_tag(tag));
}

mp::Request Comm::irecv(std::uint64_t count, Datatype type, int source,
                        std::uint32_t tag) {
  return lib().irecv(global(source), bytes_of(type, count), wire_tag(tag));
}

sim::Task<void> Comm::sendrecv(std::uint64_t send_count, Datatype type,
                               int dest, std::uint64_t recv_count,
                               int source, std::uint32_t tag) {
  mp::Request s = isend(send_count, type, dest, tag);
  co_await recv(recv_count, type, source, tag);
  co_await s.wait();
}

// ---------------------------------------------------------------------------
// collectives
// ---------------------------------------------------------------------------

sim::Task<void> Comm::barrier() {
  // Dissemination barrier: ceil(log2(size)) rounds.
  std::uint32_t round = 0;
  for (int mask = 1; mask < size(); mask <<= 1, ++round) {
    const int to = (rank_ + mask) % size();
    const int from = (rank_ - mask + size()) % size();
    mp::Request s = isend(1, Datatype::kByte, to, kTagBarrier + round);
    co_await recv(1, Datatype::kByte, from, kTagBarrier + round);
    co_await s.wait();
  }
}

sim::Task<void> Comm::bcast(std::uint64_t count, Datatype type, int root) {
  if (size() <= 1 || count == 0) co_return;
  const int vrank = (rank_ - root + size()) % size();
  int mask = 1;
  while (mask < size()) {
    if (vrank & mask) {
      const int src = (vrank - mask + root) % size();
      co_await recv(count, type, src, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  // Forward down the binomial tree.
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & mask) == 0 && vrank + mask < size()) {
      const int dst = (vrank + mask + root) % size();
      co_await send(count, type, dst, kTagBcast);
    }
    mask >>= 1;
  }
}

sim::Task<void> Comm::reduce(std::uint64_t count, Datatype type, int root) {
  if (size() <= 1 || count == 0) co_return;
  const int vrank = (rank_ - root + size()) % size();
  const std::uint64_t bytes = bytes_of(type, count);
  int mask = 1;
  while (mask < size()) {
    if (vrank & mask) {
      const int dst = (vrank - mask + root) % size();
      co_await send(count, type, dst, kTagReduce);
      break;
    }
    if (vrank + mask < size()) {
      const int src = (vrank + mask + root) % size();
      co_await recv(count, type, src, kTagReduce);
      co_await combine(bytes);
    }
    mask <<= 1;
  }
}

sim::Task<void> Comm::allreduce(std::uint64_t count, Datatype type) {
  if (size() <= 1 || count == 0) co_return;
  const std::uint64_t bytes = bytes_of(type, count);
  if (power_of_two(size())) {
    // Recursive doubling: log2(size) exchange rounds.
    std::uint32_t round = 0;
    for (int mask = 1; mask < size(); mask <<= 1, ++round) {
      const int partner = rank_ ^ mask;
      co_await sendrecv(count, type, partner, count, partner,
                        kTagAllreduce + round);
      co_await combine(bytes);
    }
  } else {
    co_await reduce(count, type, /*root=*/0);
    co_await bcast(count, type, /*root=*/0);
  }
}

sim::Task<void> Comm::gather(std::uint64_t count, Datatype type, int root) {
  if (size() <= 1 || count == 0) co_return;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) co_await recv(count, type, r, kTagGather);
    }
  } else {
    co_await send(count, type, root, kTagGather);
  }
}

sim::Task<void> Comm::scatter(std::uint64_t count, Datatype type,
                              int root) {
  if (size() <= 1 || count == 0) co_return;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r != root) co_await send(count, type, r, kTagScatter);
    }
  } else {
    co_await recv(count, type, root, kTagScatter);
  }
}

sim::Task<void> Comm::allgather(std::uint64_t count, Datatype type) {
  if (size() <= 1 || count == 0) co_return;
  if (power_of_two(size())) {
    // Recursive doubling: the exchanged block doubles every round.
    std::uint64_t block = count;
    std::uint32_t round = 0;
    for (int mask = 1; mask < size(); mask <<= 1, ++round) {
      const int partner = rank_ ^ mask;
      co_await sendrecv(block, type, partner, block, partner,
                        kTagAllgather + round);
      block *= 2;
    }
  } else {
    // Ring fallback: size-1 steps of one block.
    for (int step = 0; step < size() - 1; ++step) {
      const int to = (rank_ + 1) % size();
      const int from = (rank_ - 1 + size()) % size();
      mp::Request s = isend(count, type, to,
                            kTagAllgather + static_cast<std::uint32_t>(step));
      co_await recv(count, type, from,
                    kTagAllgather + static_cast<std::uint32_t>(step));
      co_await s.wait();
    }
  }
}

sim::Task<void> Comm::alltoall(std::uint64_t count, Datatype type) {
  if (size() <= 1 || count == 0) co_return;
  // Pairwise exchange: size-1 rounds, each a deadlock-free sendrecv.
  for (int r = 1; r < size(); ++r) {
    const int to = (rank_ + r) % size();
    const int from = (rank_ - r + size()) % size();
    mp::Request s = isend(count, type, to,
                          kTagAlltoall + static_cast<std::uint32_t>(r));
    co_await recv(count, type, from,
                  kTagAlltoall + static_cast<std::uint32_t>(r));
    co_await s.wait();
  }
}

}  // namespace pp::mpi
