// An MPI-1-flavoured facade over the library models: the public API a
// downstream application would program against (the paper's application
// view of the world).
//
// Scope: blocking and nonblocking point-to-point with communicator
// contexts and typed counts, plus the MPI-1 collective set implemented
// with the standard algorithms:
//   Bcast      binomial tree
//   Reduce     binomial tree (reversed)
//   Allreduce  recursive doubling (power-of-two) / reduce+bcast fallback
//   Barrier    dissemination
//   Gather     linear fan-in        Scatter   linear fan-out
//   Allgather  recursive doubling / ring fallback
//   Alltoall   pairwise exchange rounds
// Communicators can be split() like MPI_Comm_split; contexts isolate tag
// spaces so libraries' matching is never confused across communicators.
//
// Data is modelled as typed element counts (the simulation carries byte
// counts, not payloads); reduction arithmetic is charged on the CPU as
// one pass over the bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mp/api.h"
#include "simcore/task.h"

namespace pp::mpi {

/// Element types (what MPI_Datatype conveys that matters here: width).
enum class Datatype : std::uint32_t {
  kByte = 1,
  kInt = 4,
  kFloat = 4,
  kDouble = 8,
  kLongLong = 8,
};

constexpr std::uint64_t bytes_of(Datatype t, std::uint64_t count) {
  return count * static_cast<std::uint64_t>(t);
}

/// One rank's handle to a communicator. All ranks of a communicator must
/// be backed by library endpoints wired to each other (MeshWorld).
class Comm {
 public:
  /// World constructor: rank i of `members` must be the endpoint whose
  /// Library::rank() equals i.
  static std::vector<Comm> world(const std::vector<mp::Library*>& members);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }
  hw::Node& node() const { return lib().node(); }

  // ---- point to point -----------------------------------------------------

  sim::Task<void> send(std::uint64_t count, Datatype type, int dest,
                       std::uint32_t tag);
  sim::Task<void> recv(std::uint64_t count, Datatype type, int source,
                       std::uint32_t tag);
  mp::Request isend(std::uint64_t count, Datatype type, int dest,
                    std::uint32_t tag);
  mp::Request irecv(std::uint64_t count, Datatype type, int source,
                    std::uint32_t tag);
  /// MPI_Sendrecv: concurrent exchange, deadlock-free.
  sim::Task<void> sendrecv(std::uint64_t send_count, Datatype type,
                           int dest, std::uint64_t recv_count, int source,
                           std::uint32_t tag);

  // ---- collectives (call on every rank of the communicator) ---------------

  sim::Task<void> barrier();
  sim::Task<void> bcast(std::uint64_t count, Datatype type, int root);
  sim::Task<void> reduce(std::uint64_t count, Datatype type, int root);
  sim::Task<void> allreduce(std::uint64_t count, Datatype type);
  sim::Task<void> gather(std::uint64_t count, Datatype type, int root);
  sim::Task<void> scatter(std::uint64_t count, Datatype type, int root);
  sim::Task<void> allgather(std::uint64_t count, Datatype type);
  sim::Task<void> alltoall(std::uint64_t count, Datatype type);

  // ---- communicator management --------------------------------------------

  /// MPI_Comm_split: ranks with the same color form a new communicator,
  /// ordered by (key, old rank). Must be called by every rank; the split
  /// is computed locally (deterministic), communication-free like most
  /// implementations' fast path. Ranks with color < 0 get an empty Comm.
  static std::vector<Comm> split(const std::vector<Comm>& world,
                                 const std::vector<int>& colors,
                                 const std::vector<int>& keys);

  bool valid() const { return !members_.empty(); }

 private:
  mp::Library* lib_ptr() const {
    return valid() ? members_[static_cast<std::size_t>(rank_)] : nullptr;
  }
  mp::Library& lib() const { return *members_[static_cast<std::size_t>(
      rank_)]; }
  int global(int comm_rank) const {
    return members_[static_cast<std::size_t>(comm_rank)]->rank();
  }
  std::uint32_t wire_tag(std::uint32_t user_tag) const {
    // Contexts carve disjoint tag spaces; user tags are 16 bits.
    return (context_ << 16) | (user_tag & 0xFFFFu);
  }
  /// Charges one arithmetic pass over the data (reduction op).
  sim::Task<void> combine(std::uint64_t bytes);

  std::vector<mp::Library*> members_;  // comm rank -> endpoint
  int rank_ = -1;
  std::uint32_t context_ = 1;
};

}  // namespace pp::mpi
