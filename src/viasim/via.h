// VIA: the Virtual Interface Architecture (paper §6).
//
// Two personalities of the same API:
//  - hardware VIA (Giganet cLAN): descriptors posted by user-level
//    doorbell writes; the NIC moves data with zero host involvement —
//    ~10 us latency, ~800 Mbps in the paper;
//  - software VIA (M-VIA on the SysKonnect sk98lin driver): the same
//    verbs, but doorbells are kernel traps and every packet costs host
//    CPU in the M-VIA dispatch path — which is why the paper measures
//    only raw-TCP-grade throughput (~425 Mbps, 42 us).
//
// Transfers at or below the RDMA threshold use send/recv descriptors;
// larger ones do an RDMA write after an address-exchange handshake — the
// "small dip at 16 kB ... at the RDMA threshold" in Figure 5.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "audit/audit.h"
#include "simcore/simulator.h"
#include "simcore/sync.h"
#include "simcore/task.h"
#include "simhw/cluster.h"
#include "simhw/node.h"
#include "simhw/pipe.h"

namespace pp::via {

struct ViaPersonality {
  std::string name;
  /// Posting a descriptor: a user-level doorbell write (hardware VIA) or
  /// a kernel trap (M-VIA).
  sim::SimTime doorbell_cost = sim::microseconds(0.8);
  /// Reaping a completion from the CQ.
  sim::SimTime completion_cost = sim::microseconds(0.8);
  /// Host CPU charged per fragment (0 for hardware VIA; the M-VIA
  /// software dispatch path for the rest).
  sim::SimTime per_frag_host_cost = 0;
  /// Default descriptor credits for this implementation (M-VIA's beta
  /// posts far fewer descriptors than the Giganet firmware).
  int default_credits = 16;

  static ViaPersonality giganet();
  static ViaPersonality mvia_sk98lin();
};

struct ViaConfig {
  ViaPersonality personality = ViaPersonality::giganet();
  /// Send/recv descriptors above this size switch to RDMA write.
  std::uint64_t rdma_threshold = 16 * 1024;
  /// Descriptor credits (fragments in flight); 0 = personality default.
  int credits = 0;
  std::uint32_t frag_header = 8;
  /// Bytes of the RDMA address-exchange control message.
  std::uint32_t ctl_bytes = 64;
  /// Delivery watchdog: when nonzero, lost data fragments and lost RDMA
  /// request/ack control messages are retransmitted after this timeout
  /// (doubling per retry up to delivery_timeout_max). 0 disables — right
  /// for the paper's lossless fabrics; enable under fault injection, or
  /// one lost fragment wedges the endpoint.
  sim::SimTime delivery_timeout = 0;
  sim::SimTime delivery_timeout_max = sim::milliseconds(10.0);
  /// Delivery attempts (original + watchdog retries) per message or RDMA
  /// handshake before the endpoint pair is declared failed and blocked
  /// send()/recv() calls raise DeliveryFailed. 0 = retry forever.
  std::uint32_t max_delivery_attempts = 0;
  /// TEST ONLY: disables the receive-side power-epoch fence so fragments
  /// from a dead epoch are accepted — the deliberate protocol bug the
  /// audit oracle (audit/audit.h) must catch. Never set outside tests.
  bool unsafe_skip_epoch_fence = false;
};

/// Raised by send()/recv() once an endpoint pair exhausted
/// `ViaConfig::max_delivery_attempts` (e.g. the peer crashed permanently).
/// Derives from sim::ProtocolFailure so sweep executors classify the run
/// `failed` rather than errored or hung.
class DeliveryFailed : public sim::ProtocolFailure {
 public:
  explicit DeliveryFailed(const std::string& what)
      : sim::ProtocolFailure(what) {}
};

/// One VI endpoint; create a connected pair with ViaFabric.
class ViEndpoint {
 public:
  ViEndpoint(sim::Simulator& sim, hw::Node& node, hw::PacketPipe& out,
             hw::PacketPipe& in, ViaConfig config, std::string name);

  sim::Task<void> send(std::uint64_t bytes, std::uint32_t tag);
  sim::Task<void> recv(std::uint64_t bytes, std::uint32_t tag);

  hw::Node& node() { return node_; }
  const ViaConfig& config() const { return config_; }
  std::uint64_t rdma_transfers() const { return rdma_transfers_; }

  /// Bytes that arrived before a descriptor was posted and paid a
  /// staging copy out of the VIA bounce buffer.
  std::uint64_t staged_bytes() const { return staged_bytes_; }

  /// Watchdog retransmissions (lost data messages or RDMA handshake
  /// control frames recovered by timeout).
  std::uint64_t delivery_failures() const { return delivery_failures_; }

  /// Fragments of ours that fault injection discarded (credits reclaimed).
  std::uint64_t frags_lost() const { return frags_lost_; }

  /// Frames dropped on this endpoint's outbound pipe (all causes).
  std::uint64_t wire_drops() const { return out_.packets_dropped(); }

  /// Power epoch this endpoint is registered under (tracks the node's;
  /// stale-epoch arrivals are rejected after their credit is returned).
  std::uint32_t epoch() const { return epoch_; }

  /// Pre-posted receive descriptors re-registered across restarts.
  std::uint64_t reposts() const { return reposts_; }

  /// Fragments rejected for carrying a previous power epoch.
  std::uint64_t stale_epoch_drops() const { return stale_epoch_drops_; }

  /// True once the pair exhausted max_delivery_attempts.
  bool failed() const { return failed_; }

 private:
  friend class ViaFabric;

  enum class Kind : std::uint8_t { kData, kRdmaReq, kRdmaAck };

  /// Per-message descriptor, one arena slot shared by every fragment of
  /// the attempt (the fragment's own byte count is derived from the
  /// frame's dma_bytes on receive).
  struct Frag {
    ViEndpoint* dst = nullptr;
    Kind kind = Kind::kData;
    std::uint32_t tag = 0;
    std::uint32_t attempt = 0;  ///< 0 = original send, else retry number
    std::uint64_t msg_seq = 0;  ///< per-sender unique data-message number
    std::uint64_t msg_bytes = 0;
    /// Destination endpoint's power epoch at injection time; stale-epoch
    /// fragments are rejected (the watchdog replays under the new epoch).
    std::uint32_t dst_epoch = 0;
    /// Delivery-oracle identity (audit/audit.h), laid out as scalars so
    /// the descriptor still fits one 64-byte arena slot. Stream 0 = no
    /// auditor; control fragments (kRdmaReq/kRdmaAck) stay untagged.
    std::uint32_t audit_stream = 0;
    std::uint64_t audit_seq = 0;
    std::uint64_t audit_check = 0;

    audit::MsgTag audit_tag() const noexcept {
      return audit::MsgTag{audit_stream, audit_seq, audit_check};
    }
    void set_audit(const audit::MsgTag& t) noexcept {
      audit_stream = t.stream;
      audit_seq = t.seq;
      audit_check = t.check;
    }
  };

  struct PartialMsg {
    std::uint32_t attempt = 0;
    std::uint64_t sofar = 0;
    bool done = false;  ///< completed; late duplicates must be ignored
  };

  struct PendingDelivery {
    std::uint64_t bytes = 0;
    std::uint32_t tag = 0;
    std::uint32_t attempt = 0;
    sim::SimTime timeout = 0;  ///< next watchdog interval (backed off)
    /// Parked in the peer's unexpected queue: stand the watchdog down
    /// (slow consumer != delivery failure) but keep the entry replayable
    /// should the peer crash before consuming it.
    bool staged = false;
    audit::MsgTag audit;  ///< replayed verbatim by watchdog retries
  };

  struct PendingReq {
    std::uint32_t attempt = 0;
    sim::SimTime timeout = 0;
    /// Parked in the peer's request queue awaiting its recv(); see
    /// PendingDelivery::staged.
    bool staged = false;
  };

  struct PostedRecv {
    std::uint32_t tag = 0;
    bool completed = false;
    std::unique_ptr<sim::Trigger> done;
  };

  /// An arrival staged in the unexpected queue (completed, unmatched).
  struct UnexpectedMsg {
    std::uint32_t tag = 0;
    std::uint64_t msg_seq = 0;
    std::uint64_t bytes = 0;
    audit::MsgTag audit;
  };

  sim::Task<void> rx_daemon();
  sim::Task<void> transmit(Kind kind, std::uint32_t tag,
                           std::uint64_t msg_seq, std::uint64_t bytes,
                           std::uint32_t attempt,
                           const audit::MsgTag& atag = {});
  void complete_message(std::uint32_t tag, std::uint64_t msg_seq,
                        std::uint64_t bytes, const audit::MsgTag& atag);
  void trace_instant(const char* what);

  sim::Task<void> retry_message(std::uint64_t msg_seq);
  void arm_delivery_watchdog(std::uint64_t msg_seq);
  sim::Task<void> retry_req(std::uint32_t tag);
  void arm_req_watchdog(std::uint32_t tag);
  /// Peer-side notification that data message `msg_seq` was consumed.
  void on_delivered(std::uint64_t msg_seq) { pending_.erase(msg_seq); }
  /// Peer-side staging notifications; see PendingDelivery::staged.
  void on_staged(std::uint64_t msg_seq);
  void on_unstaged(std::uint64_t msg_seq);
  void on_req_staged(std::uint32_t tag);
  void on_req_unstaged(std::uint32_t tag);
  void fail_pair(const char* reason);
  void on_node_crash();
  void on_node_restart();
  void prune_partials();

  sim::Simulator& sim_;
  hw::Node& node_;
  hw::PacketPipe& out_;
  hw::PacketPipe& in_;
  ViaConfig config_;
  std::string name_;

  sim::ByteSemaphore credits_;
  ViEndpoint* peer_ = nullptr;

  // Send side.
  std::uint32_t audit_stream_ = 0;  ///< delivery-oracle stream (0 = off)
  std::uint64_t next_msg_seq_ = 0;
  std::map<std::uint64_t, PendingDelivery> pending_;  // msg_seq -> watchdog
  std::map<std::uint32_t, PendingReq> pending_reqs_;  // tag -> req watchdog
  std::uint64_t delivery_failures_ = 0;
  std::uint64_t frags_lost_ = 0;

  // Receive side.
  std::map<std::uint64_t, PartialMsg> partial_;  // msg_seq -> progress
  std::deque<PostedRecv*> posted_;
  std::deque<UnexpectedMsg> unexpected_;
  // RDMA handshakes: requests seen / acks awaited, FIFO per endpoint.
  std::deque<std::uint32_t> rdma_reqs_;
  std::deque<sim::Trigger*> rdma_ack_waiters_;
  /// Tags we have answered with an ack whose data has not yet completed;
  /// a duplicate request for one of these means the ack was lost and is
  /// simply re-sent.
  std::set<std::uint32_t> rdma_acked_;
  sim::Signal arrivals_;
  std::uint64_t rdma_transfers_ = 0;
  std::uint64_t staged_bytes_ = 0;

  // Crash/restart state.
  std::uint32_t epoch_ = 1;  ///< synced to the node's power epoch
  std::uint64_t reposts_ = 0;
  std::uint64_t stale_epoch_drops_ = 0;
  bool failed_ = false;
  std::string fail_reason_;

  /// Liveness token: watchdog timers and drop callbacks can outlive a
  /// torn-down endpoint; they hold a weak handle and become no-ops.
  std::shared_ptr<char> alive_ = std::make_shared<char>(1);
};

/// Builds a VIA link between two nodes and a connected endpoint pair.
class ViaFabric {
 public:
  ViaFabric(hw::Cluster& cluster, hw::Node& a, hw::Node& b,
            const hw::NicConfig& nic, const hw::LinkConfig& link,
            ViaConfig config = {});

  ViEndpoint& end_a() { return *a_; }
  ViEndpoint& end_b() { return *b_; }

 private:
  hw::Cluster::Duplex duplex_;
  std::unique_ptr<ViEndpoint> a_;
  std::unique_ptr<ViEndpoint> b_;
};

}  // namespace pp::via
