#include "viasim/via.h"

#include <algorithm>
#include <cassert>

#include "simcore/tracing.h"

namespace pp::via {

ViaPersonality ViaPersonality::giganet() {
  ViaPersonality p;
  p.name = "Giganet cLAN";
  p.doorbell_cost = sim::microseconds(0.8);
  p.completion_cost = sim::microseconds(0.8);
  p.per_frag_host_cost = 0;
  return p;
}

ViaPersonality ViaPersonality::mvia_sk98lin() {
  ViaPersonality p;
  p.name = "M-VIA/sk98lin";
  // Doorbells are kernel traps and every packet runs through the M-VIA
  // software dispatch path on the host CPU.
  p.doorbell_cost = sim::microseconds(4.0);
  p.completion_cost = sim::microseconds(3.0);
  p.per_frag_host_cost = sim::microseconds(12.0);
  p.default_credits = 8;
  return p;
}

ViEndpoint::ViEndpoint(sim::Simulator& sim, hw::Node& node,
                       hw::PacketPipe& out, hw::PacketPipe& in,
                       ViaConfig config, std::string name)
    : sim_(sim),
      node_(node),
      out_(out),
      in_(in),
      config_(config),
      name_(std::move(name)),
      credits_(sim, static_cast<std::uint64_t>(
                   config.credits > 0 ? config.credits
                                      : config.personality.default_credits)),
      arrivals_(sim),
      epoch_(node.power_epoch()) {
  // Delivery-oracle stream: one directed channel per sending endpoint.
  // The auditor must be attached before the fabric is built (see
  // Simulator::set_auditor); untagged messages stay stream 0.
  if (audit::Auditor* aud = sim_.auditor()) {
    audit_stream_ = aud->register_stream(name_);
  }
  sim_.spawn_daemon(rx_daemon(), name_ + ".rx");
  // Crash/restart hooks; a run that never crashes only pays the push.
  node_.add_power_listener([this](hw::PowerEvent e) {
    if (e == hw::PowerEvent::kCrash) {
      on_node_crash();
    } else {
      on_node_restart();
    }
  });
}

void ViEndpoint::on_node_crash() {
  // NIC and bounce-buffer state dies with the host: partial reassembly,
  // staged arrivals, queued RDMA requests and the lost-ack replay set are
  // gone. Senders whose messages/requests were parked here must resume
  // replaying them; pre-posted descriptors and our own send-side pending
  // logs survive (the library re-registers them at restart).
  trace_instant("vi-crash");
  for (const UnexpectedMsg& u : unexpected_) {
    if (peer_) peer_->on_unstaged(u.msg_seq);
  }
  unexpected_.clear();
  for (const std::uint32_t tag : rdma_reqs_) {
    if (peer_) peer_->on_req_unstaged(tag);
  }
  rdma_reqs_.clear();
  rdma_acked_.clear();
  partial_.clear();
}

void ViEndpoint::on_node_restart() {
  // Re-register under the node's new power epoch: fragments stamped with
  // the old epoch are rejected on arrival from now on.
  epoch_ = node_.power_epoch();
  reposts_ += posted_.size();
  trace_instant("vi-restart");
}

void ViEndpoint::on_staged(std::uint64_t msg_seq) {
  auto it = pending_.find(msg_seq);
  if (it != pending_.end()) it->second.staged = true;
}

void ViEndpoint::on_unstaged(std::uint64_t msg_seq) {
  auto it = pending_.find(msg_seq);
  if (it == pending_.end() || !it->second.staged) return;
  it->second.staged = false;
  it->second.timeout = config_.delivery_timeout;  // fresh situation
  arm_delivery_watchdog(msg_seq);
}

void ViEndpoint::on_req_staged(std::uint32_t tag) {
  auto it = pending_reqs_.find(tag);
  if (it != pending_reqs_.end()) it->second.staged = true;
}

void ViEndpoint::on_req_unstaged(std::uint32_t tag) {
  auto it = pending_reqs_.find(tag);
  if (it == pending_reqs_.end() || !it->second.staged) return;
  it->second.staged = false;
  it->second.timeout = config_.delivery_timeout;
  arm_req_watchdog(tag);
}

void ViEndpoint::fail_pair(const char* reason) {
  ViEndpoint* const ends[2] = {this, peer_};
  for (ViEndpoint* e : ends) {
    if (e == nullptr || e->failed_) continue;
    e->failed_ = true;
    e->fail_reason_ = e->name_ + ": " + reason;
    e->trace_instant("vi-failed");
    // Wake everything parked on this endpoint: senders blocked on
    // credits or an RDMA ack, posted receives, request waiters. All
    // re-check failed_ and raise DeliveryFailed.
    e->credits_.release(1ull << 32);
    for (PostedRecv* pr : e->posted_) pr->done->set();
    e->posted_.clear();
    for (sim::Trigger* t : e->rdma_ack_waiters_) t->set();
    e->rdma_ack_waiters_.clear();
    e->arrivals_.notify_all();
  }
}

void ViEndpoint::trace_instant(const char* what) {
  if (sim::TraceRecorder* t = sim_.tracer()) {
    t->record_instant(name_, what, sim_.now());
  }
}

sim::Task<void> ViEndpoint::transmit(Kind kind, std::uint32_t tag,
                                     std::uint64_t msg_seq,
                                     std::uint64_t bytes,
                                     std::uint32_t attempt,
                                     const audit::MsgTag& atag) {
  const std::uint32_t mtu = out_.nic().mtu;
  // One arena descriptor per message attempt, shared by every fragment
  // (a refcounted view, not a clone); the fragment's own byte count is
  // derived from the frame's dma_bytes on receive.
  sim::PacketRef desc = sim_.packet_arena().make<Frag>();
  Frag* f = desc.get<Frag>();
  f->dst = peer_;
  f->kind = kind;
  f->tag = tag;
  f->msg_seq = msg_seq;
  f->msg_bytes = bytes;
  f->attempt = attempt;
  f->dst_epoch = peer_ != nullptr ? peer_->epoch_ : 0;
  f->set_audit(atag);
  // A dropped fragment must return its descriptor credit, or the
  // endpoint strangles itself one lost frame at a time. The hook lives
  // once in the shared descriptor and fires once per dropped fragment.
  std::weak_ptr<char> guard = alive_;
  desc.set_drop([this, guard] {
    if (guard.expired()) return;
    credits_.release(1);
    ++frags_lost_;
    trace_instant("frag-drop");
  });
  std::uint64_t left = bytes;
  bool first = true;
  while (first || left > 0) {
    first = false;
    const std::uint64_t frag = std::min<std::uint64_t>(left, mtu);
    left -= frag;
    co_await credits_.acquire(1);
    if (failed_) co_return;  // poisoned grant from fail_pair()
    if (config_.personality.per_frag_host_cost > 0) {
      co_await node_.cpu_cost(config_.personality.per_frag_host_cost);
    }
    hw::Packet p;
    p.dma_bytes = frag + config_.frag_header;
    p.wire_bytes = frag + config_.frag_header + out_.nic().frame_overhead;
    p.desc = desc;
    p.fire_drop = true;  // every fragment holds one descriptor credit
    out_.inject(std::move(p));
  }
}

sim::Task<void> ViEndpoint::retry_message(std::uint64_t msg_seq) {
  auto it = pending_.find(msg_seq);
  if (it == pending_.end()) co_return;  // delivered while we were queued
  const PendingDelivery p = it->second;
  co_await transmit(Kind::kData, p.tag, msg_seq, p.bytes, p.attempt, p.audit);
  arm_delivery_watchdog(msg_seq);
}

void ViEndpoint::arm_delivery_watchdog(std::uint64_t msg_seq) {
  auto it = pending_.find(msg_seq);
  if (it == pending_.end()) return;  // delivered (or watchdog disabled)
  const std::uint32_t attempt = it->second.attempt;
  std::weak_ptr<char> guard = alive_;
  sim_.call_after(it->second.timeout, [this, guard, msg_seq, attempt] {
    if (guard.expired() || failed_) return;
    auto pit = pending_.find(msg_seq);
    if (pit == pending_.end() || pit->second.attempt != attempt) return;
    if (pit->second.staged) return;  // parked at the peer; re-armed on crash
    if (config_.max_delivery_attempts > 0 &&
        pit->second.attempt + 1 >= config_.max_delivery_attempts) {
      fail_pair("delivery-attempts-exhausted");
      return;
    }
    ++delivery_failures_;
    trace_instant("delivery-retry");
    pit->second.attempt += 1;
    pit->second.timeout =
        std::min(pit->second.timeout * 2, config_.delivery_timeout_max);
    sim_.spawn(retry_message(msg_seq), name_ + ".retry");
  });
}

sim::Task<void> ViEndpoint::retry_req(std::uint32_t tag) {
  auto it = pending_reqs_.find(tag);
  if (it == pending_reqs_.end()) co_return;  // acked while we were queued
  const std::uint32_t attempt = it->second.attempt;
  co_await transmit(Kind::kRdmaReq, tag, 0, config_.ctl_bytes, attempt);
  arm_req_watchdog(tag);
}

void ViEndpoint::arm_req_watchdog(std::uint32_t tag) {
  auto it = pending_reqs_.find(tag);
  if (it == pending_reqs_.end()) return;  // acked (or watchdog disabled)
  const std::uint32_t attempt = it->second.attempt;
  std::weak_ptr<char> guard = alive_;
  sim_.call_after(it->second.timeout, [this, guard, tag, attempt] {
    if (guard.expired() || failed_) return;
    auto rit = pending_reqs_.find(tag);
    if (rit == pending_reqs_.end() || rit->second.attempt != attempt) return;
    if (rit->second.staged) return;  // parked at the peer; re-armed on crash
    if (config_.max_delivery_attempts > 0 &&
        rit->second.attempt + 1 >= config_.max_delivery_attempts) {
      fail_pair("rdma-req-attempts-exhausted");
      return;
    }
    ++delivery_failures_;
    trace_instant("req-retry");
    rit->second.attempt += 1;
    rit->second.timeout =
        std::min(rit->second.timeout * 2, config_.delivery_timeout_max);
    sim_.spawn(retry_req(tag), name_ + ".retry");
  });
}

void ViEndpoint::prune_partials() {
  // Completed markers are kept so late duplicates of a delivered message
  // cannot re-complete it; bound their number for long streaming runs.
  if (partial_.size() <= 4096) return;
  for (auto it = partial_.begin();
       it != partial_.end() && partial_.size() > 2048;) {
    if (it->second.done) {
      it = partial_.erase(it);
    } else {
      ++it;
    }
  }
}

void ViEndpoint::complete_message(std::uint32_t tag, std::uint64_t msg_seq,
                                  std::uint64_t bytes,
                                  const audit::MsgTag& atag) {
  auto it = std::find_if(posted_.begin(), posted_.end(), [&](PostedRecv* p) {
    return !p->completed && p->tag == tag;
  });
  if (it != posted_.end()) {
    PostedRecv* pr = *it;
    posted_.erase(it);
    pr->completed = true;
    trace_instant("complete");
    // Consumption point (posted descriptor): the oracle verifies
    // intact/exactly-once/FIFO here. A completion into a posted
    // descriptor on an already-failed pair is a teardown violation.
    if (audit::Auditor* aud = sim_.auditor()) {
      aud->on_deliver(atag, bytes, /*after_teardown=*/failed_);
    }
    if (peer_) peer_->on_delivered(msg_seq);
    pr->done->set();
  } else {
    trace_instant("unexpected");
    unexpected_.push_back(UnexpectedMsg{tag, msg_seq, bytes, atag});
    // Staged, not consumed: the sender's watchdog stands down but keeps
    // the message replayable should this node crash before recv(). The
    // oracle deliberately does NOT count staging as delivery — a crash
    // may wipe this queue and the replay is correct, not a duplicate.
    if (peer_) peer_->on_staged(msg_seq);
    arrivals_.notify_all();
  }
}

sim::Task<void> ViEndpoint::rx_daemon() {
  for (;;) {
    hw::Packet p = co_await in_.delivered().pop();
    assert(p.desc && "foreign packet on VIA pipe");
    const Frag* frag = p.desc.get<Frag>();
    assert(frag->dst == this && "foreign packet on VIA pipe");
    if (p.injected_dup) {
      // NIC-level dedup: an injected duplicate never held a credit and
      // must not touch protocol state.
      trace_instant("dup-filtered");
      continue;
    }
    peer_->credits_.release(1);
    if (frag->dst_epoch != epoch_ && !config_.unsafe_skip_epoch_fence) {
      // Addressed to a previous power epoch of this endpoint: the state
      // it belonged to died with the node. The credit already went home;
      // the sender's watchdogs replay under the current epoch.
      ++stale_epoch_drops_;
      trace_instant("stale-epoch");
      continue;
    }
    if (p.corrupted) {
      // CRC failure: the fragment is discarded; the message completes via
      // the sender's delivery watchdog.
      trace_instant("crc-drop");
      continue;
    }
    if (config_.personality.per_frag_host_cost > 0) {
      co_await node_.cpu_cost(config_.personality.per_frag_host_cost);
    }
    switch (frag->kind) {
      case Kind::kData: {
        PartialMsg& pm = partial_[frag->msg_seq];
        if (pm.done || frag->attempt < pm.attempt) break;  // stale duplicate
        if (frag->attempt > pm.attempt) {
          // A retry superseded a partially-arrived attempt; start over.
          pm.attempt = frag->attempt;
          pm.sofar = 0;
        }
        // Fencing/CRC oracle: this fragment is being ACCEPTED into a
        // partial message. With the rejection ladder intact neither
        // condition can hold; an upstream bug trips it.
        if (audit::Auditor* aud = sim_.auditor()) {
          aud->on_accept_fragment(frag->audit_tag(), frag->dst_epoch,
                                  epoch_, p.corrupted);
        }
        pm.sofar += p.dma_bytes - config_.frag_header;
        if (pm.sofar == frag->msg_bytes) {
          if (config_.delivery_timeout > 0) {
            pm.done = true;
            prune_partials();
          } else {
            partial_.erase(frag->msg_seq);
          }
          rdma_acked_.erase(frag->tag);
          complete_message(frag->tag, frag->msg_seq, frag->msg_bytes,
                           frag->audit_tag());
        }
        break;
      }
      case Kind::kRdmaReq:
        if (std::find(rdma_reqs_.begin(), rdma_reqs_.end(), frag->tag) !=
            rdma_reqs_.end()) {
          // Retransmitted request whose original is still queued.
          trace_instant("dup-req");
          break;
        }
        if (rdma_acked_.count(frag->tag) > 0) {
          // We already answered this request but the ack was lost; answer
          // again without re-posting the receive.
          trace_instant("ack-resend");
          sim_.spawn(
              transmit(Kind::kRdmaAck, frag->tag, 0, config_.ctl_bytes, 0),
              name_ + ".ack");
          break;
        }
        if (node_.crash_count() > 0 &&
            std::find_if(posted_.begin(), posted_.end(),
                         [&](PostedRecv* pr) {
                           return !pr->completed && pr->tag == frag->tag;
                         }) != posted_.end()) {
          // A crash wiped the lost-ack replay set, but the posted receive
          // proves this handshake already advanced past the request on
          // our side: our ack (or its memory) died with the node. Re-ack.
          trace_instant("ack-resend");
          rdma_acked_.insert(frag->tag);
          sim_.spawn(
              transmit(Kind::kRdmaAck, frag->tag, 0, config_.ctl_bytes, 0),
              name_ + ".ack");
          break;
        }
        rdma_reqs_.push_back(frag->tag);
        // Parked until recv() consumes it; the sender's request watchdog
        // stands down meanwhile (re-armed on consumption or our crash).
        if (peer_) peer_->on_req_staged(frag->tag);
        arrivals_.notify_all();
        break;
      case Kind::kRdmaAck: {
        if (config_.delivery_timeout > 0 &&
            pending_reqs_.erase(frag->tag) == 0) {
          // Duplicate ack for a request already answered; the FIFO waiter
          // (if any) belongs to a different handshake.
          trace_instant("stale-ack");
          break;
        }
        if (rdma_ack_waiters_.empty()) {
          trace_instant("stale-ack");
          break;
        }
        sim::Trigger* t = rdma_ack_waiters_.front();
        rdma_ack_waiters_.pop_front();
        t->set();
        break;
      }
    }
  }
}

sim::Task<void> ViEndpoint::send(std::uint64_t bytes, std::uint32_t tag) {
  if (failed_) throw DeliveryFailed(fail_reason_);
  co_await node_.cpu_cost(config_.personality.doorbell_cost);
  trace_instant("doorbell");
  if (bytes <= config_.rdma_threshold) {
    const std::uint64_t seq = next_msg_seq_++;
    audit::MsgTag atag;
    if (audit::Auditor* aud = sim_.auditor()) {
      atag = aud->on_inject(audit_stream_, bytes);
    }
    if (config_.delivery_timeout > 0) {
      // Each new message starts from the BASE timeout: backoff is
      // per-message state, never inherited across messages.
      pending_[seq] = PendingDelivery{bytes, tag, 0,
                                      config_.delivery_timeout, false, atag};
    }
    co_await transmit(Kind::kData, tag, seq, bytes, 0, atag);
    if (failed_) throw DeliveryFailed(fail_reason_);
    arm_delivery_watchdog(seq);
    co_return;
  }
  // RDMA write: exchange the target address, then place the data.
  rdma_transfers_ += 1;
  trace_instant("rdma-req");
  sim::Trigger ack(sim_);
  rdma_ack_waiters_.push_back(&ack);
  if (config_.delivery_timeout > 0) {
    pending_reqs_[tag] = PendingReq{0, config_.delivery_timeout, false};
  }
  co_await transmit(Kind::kRdmaReq, tag, 0, config_.ctl_bytes, 0);
  arm_req_watchdog(tag);
  co_await ack.wait();
  if (failed_) throw DeliveryFailed(fail_reason_);
  co_await node_.cpu_cost(config_.personality.doorbell_cost);
  trace_instant("doorbell");
  const std::uint64_t seq = next_msg_seq_++;
  audit::MsgTag atag;
  if (audit::Auditor* aud = sim_.auditor()) {
    atag = aud->on_inject(audit_stream_, bytes);
  }
  if (config_.delivery_timeout > 0) {
    pending_[seq] =
        PendingDelivery{bytes, tag, 0, config_.delivery_timeout, false, atag};
  }
  co_await transmit(Kind::kData, tag, seq, bytes, 0, atag);
  if (failed_) throw DeliveryFailed(fail_reason_);
  arm_delivery_watchdog(seq);
}

sim::Task<void> ViEndpoint::recv(std::uint64_t bytes, std::uint32_t tag) {
  if (failed_) throw DeliveryFailed(fail_reason_);
  co_await node_.cpu_cost(config_.personality.doorbell_cost);
  bool staged = false;
  if (bytes > config_.rdma_threshold) {
    // Wait for the address request, answer it, then wait for the data.
    while (true) {
      auto rit = std::find(rdma_reqs_.begin(), rdma_reqs_.end(), tag);
      if (rit != rdma_reqs_.end()) {
        rdma_reqs_.erase(rit);
        // The request leaves its parking spot: the sender's watchdog
        // takes over again (covers a lost ack below).
        if (peer_) peer_->on_req_unstaged(tag);
        break;
      }
      if (failed_) throw DeliveryFailed(fail_reason_);
      co_await arrivals_.wait();
    }
    trace_instant("post-recv");
    PostedRecv pr;
    pr.tag = tag;
    pr.done = std::make_unique<sim::Trigger>(sim_);
    posted_.push_back(&pr);
    trace_instant("rdma-ack");
    rdma_acked_.insert(tag);  // until the data completes: lost-ack replay
    co_await transmit(Kind::kRdmaAck, tag, 0, config_.ctl_bytes, 0);
    co_await pr.done->wait();
    if (failed_) throw DeliveryFailed(fail_reason_);
  } else {
    auto uit =
        std::find_if(unexpected_.begin(), unexpected_.end(),
                     [&](const UnexpectedMsg& u) { return u.tag == tag; });
    if (uit != unexpected_.end()) {
      // Now the message is truly consumed: the sender may forget it.
      if (audit::Auditor* aud = sim_.auditor()) {
        aud->on_deliver(uit->audit, uit->bytes, /*after_teardown=*/failed_);
      }
      if (peer_) peer_->on_delivered(uit->msg_seq);
      unexpected_.erase(uit);
      staged = true;  // arrived before a descriptor was posted
    } else {
      trace_instant("post-recv");
      PostedRecv pr;
      pr.tag = tag;
      pr.done = std::make_unique<sim::Trigger>(sim_);
      posted_.push_back(&pr);
      co_await pr.done->wait();
      if (failed_) throw DeliveryFailed(fail_reason_);
    }
  }
  co_await node_.cpu_cost(config_.personality.completion_cost);
  if (staged) {
    staged_bytes_ += bytes;
    trace_instant("staging-copy");
    co_await node_.staging_copy(bytes);
  }
}

ViaFabric::ViaFabric(hw::Cluster& cluster, hw::Node& a, hw::Node& b,
                     const hw::NicConfig& nic, const hw::LinkConfig& link,
                     ViaConfig config)
    : duplex_(cluster.connect(a, b, nic, link)) {
  a_ = std::make_unique<ViEndpoint>(cluster.simulator(), a, duplex_.forward,
                                    duplex_.backward, config, "via.a");
  b_ = std::make_unique<ViEndpoint>(cluster.simulator(), b,
                                    duplex_.backward, duplex_.forward,
                                    config, "via.b");
  a_->peer_ = b_.get();
  b_->peer_ = a_.get();
}

}  // namespace pp::via
