#include "viasim/via.h"

#include <algorithm>
#include <cassert>

#include "simcore/tracing.h"

namespace pp::via {

ViaPersonality ViaPersonality::giganet() {
  ViaPersonality p;
  p.name = "Giganet cLAN";
  p.doorbell_cost = sim::microseconds(0.8);
  p.completion_cost = sim::microseconds(0.8);
  p.per_frag_host_cost = 0;
  return p;
}

ViaPersonality ViaPersonality::mvia_sk98lin() {
  ViaPersonality p;
  p.name = "M-VIA/sk98lin";
  // Doorbells are kernel traps and every packet runs through the M-VIA
  // software dispatch path on the host CPU.
  p.doorbell_cost = sim::microseconds(4.0);
  p.completion_cost = sim::microseconds(3.0);
  p.per_frag_host_cost = sim::microseconds(12.0);
  p.default_credits = 8;
  return p;
}

ViEndpoint::ViEndpoint(sim::Simulator& sim, hw::Node& node,
                       hw::PacketPipe& out, hw::PacketPipe& in,
                       ViaConfig config, std::string name)
    : sim_(sim),
      node_(node),
      out_(out),
      in_(in),
      config_(config),
      name_(std::move(name)),
      credits_(sim, static_cast<std::uint64_t>(
                   config.credits > 0 ? config.credits
                                      : config.personality.default_credits)),
      arrivals_(sim) {
  sim_.spawn_daemon(rx_daemon(), name_ + ".rx");
}

void ViEndpoint::trace_instant(const char* what) {
  if (sim::TraceRecorder* t = sim_.tracer()) {
    t->record_instant(name_, what, sim_.now());
  }
}

sim::Task<void> ViEndpoint::transmit(Kind kind, std::uint32_t tag,
                                     std::uint64_t bytes) {
  const std::uint32_t mtu = out_.nic().mtu;
  std::uint64_t left = bytes;
  bool first = true;
  while (first || left > 0) {
    first = false;
    const std::uint64_t frag = std::min<std::uint64_t>(left, mtu);
    left -= frag;
    co_await credits_.acquire(1);
    if (config_.personality.per_frag_host_cost > 0) {
      co_await node_.cpu_cost(config_.personality.per_frag_host_cost);
    }
    auto ctx = std::make_shared<Frag>();
    ctx->dst = peer_;
    ctx->kind = kind;
    ctx->tag = tag;
    ctx->msg_bytes = bytes;
    ctx->frag_bytes = frag;
    ctx->last = (left == 0);
    hw::Packet p;
    p.dma_bytes = frag + config_.frag_header;
    p.wire_bytes = frag + config_.frag_header + out_.nic().frame_overhead;
    p.ctx = std::move(ctx);
    out_.inject(std::move(p));
  }
}

void ViEndpoint::complete_message(std::uint32_t tag) {
  auto it = std::find_if(posted_.begin(), posted_.end(), [&](PostedRecv* p) {
    return !p->completed && p->tag == tag;
  });
  if (it != posted_.end()) {
    PostedRecv* pr = *it;
    posted_.erase(it);
    pr->completed = true;
    trace_instant("complete");
    pr->done->set();
  } else {
    trace_instant("unexpected");
    unexpected_.push_back(tag);
    arrivals_.notify_all();
  }
}

sim::Task<void> ViEndpoint::rx_daemon() {
  for (;;) {
    hw::Packet p = co_await in_.delivered().pop();
    auto frag = std::static_pointer_cast<Frag>(p.ctx);
    assert(frag && frag->dst == this && "foreign packet on VIA pipe");
    peer_->credits_.release(1);
    if (config_.personality.per_frag_host_cost > 0) {
      co_await node_.cpu_cost(config_.personality.per_frag_host_cost);
    }
    switch (frag->kind) {
      case Kind::kData: {
        std::uint64_t& sofar = partial_[frag->tag];
        sofar += frag->frag_bytes;
        if (frag->last) {
          assert(sofar == frag->msg_bytes && "fragment accounting broke");
          partial_.erase(frag->tag);
          complete_message(frag->tag);
        }
        break;
      }
      case Kind::kRdmaReq:
        rdma_reqs_.push_back(frag->tag);
        arrivals_.notify_all();
        break;
      case Kind::kRdmaAck: {
        assert(!rdma_ack_waiters_.empty() && "RDMA ack without a waiter");
        sim::Trigger* t = rdma_ack_waiters_.front();
        rdma_ack_waiters_.pop_front();
        t->set();
        break;
      }
    }
  }
}

sim::Task<void> ViEndpoint::send(std::uint64_t bytes, std::uint32_t tag) {
  co_await node_.cpu_cost(config_.personality.doorbell_cost);
  trace_instant("doorbell");
  if (bytes <= config_.rdma_threshold) {
    co_await transmit(Kind::kData, tag, bytes);
    co_return;
  }
  // RDMA write: exchange the target address, then place the data.
  rdma_transfers_ += 1;
  trace_instant("rdma-req");
  sim::Trigger ack(sim_);
  rdma_ack_waiters_.push_back(&ack);
  co_await transmit(Kind::kRdmaReq, tag, config_.ctl_bytes);
  co_await ack.wait();
  co_await node_.cpu_cost(config_.personality.doorbell_cost);
  trace_instant("doorbell");
  co_await transmit(Kind::kData, tag, bytes);
}

sim::Task<void> ViEndpoint::recv(std::uint64_t bytes, std::uint32_t tag) {
  co_await node_.cpu_cost(config_.personality.doorbell_cost);
  bool staged = false;
  if (bytes > config_.rdma_threshold) {
    // Wait for the address request, answer it, then wait for the data.
    while (true) {
      auto rit = std::find(rdma_reqs_.begin(), rdma_reqs_.end(), tag);
      if (rit != rdma_reqs_.end()) {
        rdma_reqs_.erase(rit);
        break;
      }
      co_await arrivals_.wait();
    }
    trace_instant("post-recv");
    PostedRecv pr;
    pr.tag = tag;
    pr.done = std::make_unique<sim::Trigger>(sim_);
    posted_.push_back(&pr);
    trace_instant("rdma-ack");
    co_await transmit(Kind::kRdmaAck, tag, config_.ctl_bytes);
    co_await pr.done->wait();
  } else {
    auto uit = std::find(unexpected_.begin(), unexpected_.end(), tag);
    if (uit != unexpected_.end()) {
      unexpected_.erase(uit);
      staged = true;  // arrived before a descriptor was posted
    } else {
      trace_instant("post-recv");
      PostedRecv pr;
      pr.tag = tag;
      pr.done = std::make_unique<sim::Trigger>(sim_);
      posted_.push_back(&pr);
      co_await pr.done->wait();
    }
  }
  co_await node_.cpu_cost(config_.personality.completion_cost);
  if (staged) {
    staged_bytes_ += bytes;
    trace_instant("staging-copy");
    co_await node_.staging_copy(bytes);
  }
}

ViaFabric::ViaFabric(hw::Cluster& cluster, hw::Node& a, hw::Node& b,
                     const hw::NicConfig& nic, const hw::LinkConfig& link,
                     ViaConfig config)
    : duplex_(cluster.connect(a, b, nic, link)) {
  a_ = std::make_unique<ViEndpoint>(cluster.simulator(), a, duplex_.forward,
                                    duplex_.backward, config, "via.a");
  b_ = std::make_unique<ViEndpoint>(cluster.simulator(), b,
                                    duplex_.backward, duplex_.forward,
                                    config, "via.b");
  a_->peer_ = b_.get();
  b_->peer_ = a_.get();
}

}  // namespace pp::via
